//! Proptest strategies for instances (behind `proptest-support`).
//!
//! Shared by the property-based tests of `pas-sim` and `pas-core` so every
//! crate fuzzes over the same instance space. Values are kept in moderate
//! ranges (releases in `[0, 100]`, works in `[0.01, 10]`) so closed-form
//! oracles stay well conditioned; adversarial magnitude testing is done
//! with dedicated deterministic cases instead.

use crate::instance::Instance;
use crate::job::Job;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy for a single valid job with the given id.
fn job_with_id(id: u32) -> impl Strategy<Value = Job> {
    ((0.0..100.0f64), (0.01..10.0f64)).prop_map(move |(release, work)| Job { id, release, work })
}

/// Arbitrary valid instance with `1..=max_jobs` jobs.
pub fn instances(max_jobs: usize) -> impl Strategy<Value = Instance> {
    vec((0.0..100.0f64, 0.01..10.0f64), 1..=max_jobs).prop_map(|pairs| {
        Instance::new(
            pairs
                .into_iter()
                .enumerate()
                .map(|(i, (release, work))| Job::new(i as u32, release, work))
                .collect(),
        )
        .expect("strategy yields valid jobs")
    })
}

/// Arbitrary equal-work instance with `1..=max_jobs` jobs (work in
/// `[0.1, 5]`, shared by all jobs).
pub fn equal_work_instances(max_jobs: usize) -> impl Strategy<Value = Instance> {
    (vec(0.0..100.0f64, 1..=max_jobs), 0.1..5.0f64)
        .prop_map(|(releases, work)| Instance::equal_work(&releases, work).expect("valid releases"))
}

/// Arbitrary all-released-immediately instance (the Theorem 11 family).
pub fn immediate_instances(max_jobs: usize) -> impl Strategy<Value = Instance> {
    vec(0.01..10.0f64, 1..=max_jobs).prop_map(|works| {
        Instance::new(
            works
                .into_iter()
                .enumerate()
                .map(|(i, w)| Job::new(i as u32, 0.0, w))
                .collect(),
        )
        .expect("valid works")
    })
}

/// A job strategy for callers that need raw jobs.
pub fn jobs() -> impl Strategy<Value = Job> {
    (0u32..1000).prop_flat_map(job_with_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn generated_instances_are_valid(inst in instances(20)) {
            prop_assert!(!inst.is_empty());
            // Sorted by release.
            for w in inst.jobs().windows(2) {
                prop_assert!(w[0].release <= w[1].release);
            }
            prop_assert!(inst.total_work() > 0.0);
        }

        #[test]
        fn equal_work_strategy_is_equal_work(inst in equal_work_instances(20)) {
            prop_assert!(inst.is_equal_work(1e-12));
        }

        #[test]
        fn immediate_strategy_releases_at_zero(inst in immediate_instances(20)) {
            prop_assert!(inst.all_released_immediately(0.0));
        }

        #[test]
        fn job_strategy_valid(job in jobs()) {
            prop_assert!(job.is_valid());
        }
    }
}
