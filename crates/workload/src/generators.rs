//! Seeded, reproducible workload generators.
//!
//! Every generator takes an explicit `seed` so benchmark rows and test
//! failures are reproducible. Distribution shapes follow the scenarios
//! the paper motivates: laptop-style sporadic arrivals (Poisson), server
//! batches (bursty), equal-work streams for the §4/§5 algorithms, and the
//! adversarial staircase where every prefix of jobs merges into one block
//! at low energy.

use crate::instance::Instance;
use crate::job::Job;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uniform releases in `[0, span)`, uniform works in `work_range`.
///
/// # Panics
/// If `n == 0`, `span < 0`, or the work range is empty/non-positive.
pub fn uniform(n: usize, span: f64, work_range: (f64, f64), seed: u64) -> Instance {
    assert!(n > 0, "n must be positive");
    assert!(span >= 0.0, "span must be non-negative");
    assert!(
        work_range.0 > 0.0 && work_range.1 >= work_range.0,
        "work range must be positive and ordered"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let rel = Uniform::new_inclusive(0.0, span.max(f64::MIN_POSITIVE));
    let wrk = Uniform::new_inclusive(work_range.0, work_range.1);
    Instance::new(
        (0..n)
            .map(|i| Job::new(i as u32, rel.sample(&mut rng), wrk.sample(&mut rng)))
            .collect(),
    )
    .expect("generated jobs are valid")
}

/// Poisson arrival process with the given `rate` (expected arrivals per
/// unit time); works uniform in `work_range`.
///
/// # Panics
/// If `n == 0` or `rate <= 0` or the work range is invalid.
pub fn poisson(n: usize, rate: f64, work_range: (f64, f64), seed: u64) -> Instance {
    assert!(n > 0, "n must be positive");
    assert!(rate > 0.0, "rate must be positive");
    assert!(
        work_range.0 > 0.0 && work_range.1 >= work_range.0,
        "work range must be positive and ordered"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let u01 = Uniform::new(f64::MIN_POSITIVE, 1.0);
    let wrk = Uniform::new_inclusive(work_range.0, work_range.1);
    let mut t = 0.0;
    Instance::new(
        (0..n)
            .map(|i| {
                // Exponential inter-arrival via inverse CDF.
                t += -u01.sample(&mut rng).ln() / rate;
                Job::new(i as u32, t, wrk.sample(&mut rng))
            })
            .collect(),
    )
    .expect("generated jobs are valid")
}

/// Poisson arrivals with **heavy-tailed** (bounded-Pareto) works: the
/// fleet-scale workload family. Datacenter traces mix many small
/// requests with rare huge ones; a bounded Pareto with shape
/// `tail_index` on `[min_work, max_work]` (inverse-CDF sampled) captures
/// that while keeping total work finite and runs reproducible.
///
/// # Panics
/// If `n == 0`, `rate <= 0`, `tail_index <= 0`, or the work bounds are
/// not `0 < min_work < max_work`.
pub fn heavy_tailed(
    n: usize,
    rate: f64,
    min_work: f64,
    max_work: f64,
    tail_index: f64,
    seed: u64,
) -> Instance {
    assert!(n > 0, "n must be positive");
    assert!(rate > 0.0, "rate must be positive");
    assert!(tail_index > 0.0, "tail index must be positive");
    assert!(
        min_work > 0.0 && max_work > min_work,
        "need 0 < min_work < max_work"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let u01 = Uniform::new(f64::MIN_POSITIVE, 1.0);
    // Bounded-Pareto inverse CDF on [L, H] with shape a:
    // x = L / (1 − u·(1 − (L/H)^a))^(1/a).
    let (l, h, a) = (min_work, max_work, tail_index);
    let tail = 1.0 - (l / h).powf(a);
    let mut t = 0.0;
    Instance::new(
        (0..n)
            .map(|i| {
                t += -u01.sample(&mut rng).ln() / rate;
                let u = u01.sample(&mut rng);
                let work = (l / (1.0 - u * tail).powf(1.0 / a)).min(h);
                Job::new(i as u32, t, work)
            })
            .collect(),
    )
    .expect("generated jobs are valid")
}

/// Equal-work Poisson stream: the input family for the flow algorithms
/// (§4) and the multiprocessor algorithms (§5), which require equal work.
pub fn equal_work_poisson(n: usize, rate: f64, work: f64, seed: u64) -> Instance {
    assert!(work > 0.0, "work must be positive");
    let base = poisson(n, rate, (1.0, 1.0), seed);
    Instance::new(
        base.jobs()
            .iter()
            .map(|j| Job::new(j.id, j.release, work))
            .collect(),
    )
    .expect("generated jobs are valid")
}

/// Bursty arrivals: `bursts` clusters of `per_burst` jobs; cluster starts
/// are `gap` apart and jobs within a cluster arrive within `spread`.
///
/// Models the server-farm scenario of the introduction: batches of
/// requests landing together, idle gaps between batches.
///
/// # Panics
/// If any count is zero or any duration negative.
pub fn bursty(
    bursts: usize,
    per_burst: usize,
    gap: f64,
    spread: f64,
    work_range: (f64, f64),
    seed: u64,
) -> Instance {
    assert!(bursts > 0 && per_burst > 0, "counts must be positive");
    assert!(
        gap >= 0.0 && spread >= 0.0,
        "durations must be non-negative"
    );
    assert!(
        work_range.0 > 0.0 && work_range.1 >= work_range.0,
        "work range must be positive and ordered"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let offset = Uniform::new_inclusive(0.0, spread.max(f64::MIN_POSITIVE));
    let wrk = Uniform::new_inclusive(work_range.0, work_range.1);
    let mut jobs = Vec::with_capacity(bursts * per_burst);
    for b in 0..bursts {
        let start = b as f64 * gap;
        for k in 0..per_burst {
            let id = (b * per_burst + k) as u32;
            jobs.push(Job::new(
                id,
                start + offset.sample(&mut rng),
                wrk.sample(&mut rng),
            ));
        }
    }
    Instance::new(jobs).expect("generated jobs are valid")
}

/// Adversarial staircase: job `i` released at `i·step` with work chosen so
/// natural block speeds are *decreasing* — the worst case for IncMerge's
/// merge loop (every job triggers a cascade) and the configuration-count
/// maximizer for the frontier.
///
/// # Panics
/// If `n == 0` or `step <= 0`.
pub fn staircase(n: usize, step: f64) -> Instance {
    assert!(n > 0, "n must be positive");
    assert!(step > 0.0, "step must be positive");
    Instance::new(
        (0..n)
            .map(|i| {
                // Work shrinks geometrically: each new block is slower than
                // the previous, forcing a merge at every insertion.
                let work = step * 0.5f64.powi(i as i32).max(f64::MIN_POSITIVE * 1e10);
                Job::new(i as u32, i as f64 * step, work.max(1e-12))
            })
            .collect(),
    )
    .expect("generated jobs are valid")
}

/// Same-instant arrival flood: `n` jobs all released at exactly `at`,
/// works uniform in `work_range` — the adversarial family for the online
/// engine's admission epsilon (at large `at` an absolute epsilon falls
/// below one ulp, so every job must still be admitted together) and for
/// re-admission after a crash.
///
/// # Panics
/// If `n == 0`, `at` is negative/non-finite, or the work range is
/// empty/non-positive.
pub fn flood(n: usize, at: f64, work_range: (f64, f64), seed: u64) -> Instance {
    assert!(n > 0, "n must be positive");
    assert!(
        at.is_finite() && at >= 0.0,
        "release must be finite and non-negative"
    );
    assert!(
        work_range.0 > 0.0 && work_range.1 >= work_range.0,
        "work range must be positive and ordered"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let wrk = Uniform::new_inclusive(work_range.0, work_range.1);
    Instance::new(
        (0..n)
            .map(|i| Job::new(i as u32, at, wrk.sample(&mut rng)))
            .collect(),
    )
    .expect("generated jobs are valid")
}

/// All jobs released immediately with the given works — the Theorem 11 /
/// Pruhs–van Stee–Uthaisombut special case.
///
/// # Panics
/// If `works` is empty or contains a non-positive value.
pub fn immediate(works: &[f64]) -> Instance {
    assert!(!works.is_empty(), "need at least one job");
    Instance::new(
        works
            .iter()
            .enumerate()
            .map(|(i, &w)| Job::new(i as u32, 0.0, w))
            .collect(),
    )
    .expect("works must be positive")
}

/// A yes-instance of Partition with `2k` values summing to `2·half`:
/// `k` random splits of `2·half/k`-sized buckets. Returns the multiset.
///
/// Used to stress the Theorem 11 reduction with instances where a perfect
/// partition is guaranteed to exist.
pub fn partition_yes_instance(k: usize, half: u64, seed: u64) -> Vec<u64> {
    assert!(k > 0, "k must be positive");
    assert!(half >= k as u64, "half must be at least k");
    let mut rng = StdRng::seed_from_u64(seed);
    // Build two halves with identical sums by mirroring random values.
    let mut values = Vec::with_capacity(2 * k);
    let mut remaining = half;
    for i in 0..k {
        let left = (k - i - 1) as u64;
        let max_take = remaining - left; // leave >=1 per remaining slot
        let take = if i + 1 == k {
            remaining
        } else {
            Uniform::new_inclusive(1, max_take.max(1)).sample(&mut rng)
        };
        // Keep at least 1 for each remaining slot.
        let take = take.min(remaining - left);
        values.push(take);
        remaining -= take;
    }
    // Mirror: second half is a different random decomposition of `half`.
    let mut remaining = half;
    for i in 0..k {
        let left = (k - i - 1) as u64;
        let max_take = remaining - left;
        let take = if i + 1 == k {
            remaining
        } else {
            Uniform::new_inclusive(1, max_take.max(1)).sample(&mut rng)
        };
        let take = take.min(remaining - left);
        values.push(take);
        remaining -= take;
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_reproducible() {
        let a = uniform(50, 100.0, (0.5, 2.0), 42);
        let b = uniform(50, 100.0, (0.5, 2.0), 42);
        let c = uniform(50, 100.0, (0.5, 2.0), 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_ranges() {
        let inst = uniform(200, 10.0, (1.0, 3.0), 7);
        for j in inst.jobs() {
            assert!((0.0..=10.0).contains(&j.release));
            assert!((1.0..=3.0).contains(&j.work));
        }
    }

    #[test]
    fn poisson_releases_increase() {
        let inst = poisson(100, 2.0, (1.0, 1.0), 11);
        let rel: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        for w in rel.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(rel[0] > 0.0);
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let inst = poisson(4000, 5.0, (1.0, 1.0), 3);
        let span = inst.last_release() - inst.first_release();
        let rate = 4000.0 / span;
        assert!((rate - 5.0).abs() < 0.5, "empirical rate {rate}");
    }

    #[test]
    fn equal_work_poisson_is_equal_work() {
        let inst = equal_work_poisson(60, 1.0, 2.5, 9);
        assert!(inst.is_equal_work(1e-12));
        assert_eq!(inst.job(0).work, 2.5);
    }

    #[test]
    fn bursty_structure() {
        let inst = bursty(3, 4, 100.0, 1.0, (1.0, 1.0), 5);
        assert_eq!(inst.len(), 12);
        // Jobs of burst b lie within [100b, 100b + 1].
        for j in inst.jobs() {
            let b = (j.release / 100.0).floor();
            assert!(j.release - 100.0 * b <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn staircase_blocks_decrease_in_natural_speed() {
        let inst = staircase(10, 1.0);
        // Natural speed of job i alone is work/step, halving every step.
        for i in 1..10 {
            assert!(inst.work(i) < inst.work(i - 1));
            assert_eq!(inst.release(i), i as f64);
        }
    }

    #[test]
    fn flood_releases_are_identical() {
        let inst = flood(40, 1e9, (0.5, 2.0), 13);
        assert_eq!(inst.len(), 40);
        for j in inst.jobs() {
            assert_eq!(j.release, 1e9);
            assert!((0.5..=2.0).contains(&j.work));
        }
        assert_eq!(flood(40, 1e9, (0.5, 2.0), 13), inst);
    }

    #[test]
    fn immediate_all_at_zero() {
        let inst = immediate(&[3.0, 1.0, 4.0]);
        assert!(inst.all_released_immediately(0.0));
        assert_eq!(inst.total_work(), 8.0);
    }

    #[test]
    fn heavy_tailed_respects_bounds_and_is_seeded() {
        let a = heavy_tailed(500, 2.0, 0.1, 100.0, 1.1, 7);
        let b = heavy_tailed(500, 2.0, 0.1, 100.0, 1.1, 7);
        assert_eq!(a, b, "same seed must reproduce the instance");
        let c = heavy_tailed(500, 2.0, 0.1, 100.0, 1.1, 8);
        assert_ne!(a, c, "different seeds must differ");
        for j in a.jobs() {
            assert!(j.work >= 0.1 && j.work <= 100.0);
        }
        // Heavy tail: with 500 draws at tail index 1.1, the max should
        // dwarf the median by a wide margin.
        let mut works: Vec<f64> = a.jobs().iter().map(|j| j.work).collect();
        works.sort_by(f64::total_cmp);
        assert!(works[499] > 10.0 * works[250], "tail not heavy enough");
    }

    #[test]
    fn partition_yes_instance_halves_balance() {
        for seed in 0..20 {
            let values = partition_yes_instance(5, 50, seed);
            assert_eq!(values.len(), 10);
            let first: u64 = values[..5].iter().sum();
            let second: u64 = values[5..].iter().sum();
            assert_eq!(first, 50, "seed {seed}");
            assert_eq!(second, 50, "seed {seed}");
            assert!(values.iter().all(|&v| v >= 1));
        }
    }
}
