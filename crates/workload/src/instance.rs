//! A validated, release-sorted scheduling instance.

use crate::job::Job;
use serde::{Deserialize, Serialize};

/// Validation failures when building an [`Instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// The job list was empty.
    Empty,
    /// A job had a negative/non-finite release or non-positive work.
    InvalidJob {
        /// Index (in the caller's order) of the offending job.
        index: usize,
        /// The offending job.
        job: Job,
    },
    /// Two jobs share the same `id`.
    DuplicateId {
        /// The duplicated identifier.
        id: u32,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::Empty => write!(f, "instance has no jobs"),
            InstanceError::InvalidJob { index, job } => {
                write!(f, "job #{index} is invalid: {job:?}")
            }
            InstanceError::DuplicateId { id } => write!(f, "duplicate job id {id}"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// An immutable scheduling instance: jobs sorted by release time.
///
/// Sorting happens on construction (stable, so ties keep the caller's
/// order, matching the paper's "assume jobs are indexed so
/// `r_1 ≤ … ≤ r_n`"). All `pas-core` algorithms take instances by
/// reference and index jobs by their *sorted* position; use
/// [`Instance::job`]`(i).id` to map back to caller identifiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<Job>", into = "Vec<Job>")]
pub struct Instance {
    jobs: Vec<Job>,
    prefix_work: Vec<f64>,
}

impl Instance {
    /// Build an instance from jobs in any order.
    ///
    /// # Errors
    /// [`InstanceError`] when the list is empty, a job is invalid, or ids
    /// collide.
    pub fn new(mut jobs: Vec<Job>) -> Result<Self, InstanceError> {
        if jobs.is_empty() {
            return Err(InstanceError::Empty);
        }
        for (index, job) in jobs.iter().enumerate() {
            if !job.is_valid() {
                return Err(InstanceError::InvalidJob { index, job: *job });
            }
        }
        let mut ids: Vec<u32> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(InstanceError::DuplicateId { id: pair[0] });
            }
        }
        jobs.sort_by(|a, b| a.release.partial_cmp(&b.release).expect("finite releases"));
        // Neumaier-compensated prefix sums (kept local: this crate is a
        // leaf and does not depend on pas-numeric).
        let mut prefix_work = Vec::with_capacity(jobs.len() + 1);
        prefix_work.push(0.0);
        let (mut sum, mut comp) = (0.0f64, 0.0f64);
        for j in &jobs {
            let t = sum + j.work;
            if sum.abs() >= j.work.abs() {
                comp += (sum - t) + j.work;
            } else {
                comp += (j.work - t) + sum;
            }
            sum = t;
            prefix_work.push(sum + comp);
        }
        Ok(Instance { jobs, prefix_work })
    }

    /// Convenience constructor from `(release, work)` pairs; ids are
    /// assigned by position.
    ///
    /// # Errors
    /// Same as [`Instance::new`].
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Result<Self, InstanceError> {
        Instance::new(
            pairs
                .iter()
                .enumerate()
                .map(|(i, &(release, work))| Job::new(i as u32, release, work))
                .collect(),
        )
    }

    /// An equal-work instance from release times only (all works = `work`).
    ///
    /// # Errors
    /// Same as [`Instance::new`].
    pub fn equal_work(releases: &[f64], work: f64) -> Result<Self, InstanceError> {
        Instance::new(
            releases
                .iter()
                .enumerate()
                .map(|(i, &release)| Job::new(i as u32, release, work))
                .collect(),
        )
    }

    /// Re-check the construction invariants: non-empty, every job
    /// finite with positive work, unique ids, sorted by release.
    ///
    /// `Instance::new` already enforces all of this, so on a correctly
    /// constructed value this always succeeds — it exists as the single
    /// typed validation gate the solver entry points call, so corrupted
    /// or hand-deserialized instances fail with a precise
    /// [`InstanceError`] (carried up solver error chains via
    /// `source()`) instead of poisoning a solve with NaNs.
    ///
    /// # Errors
    /// The same [`InstanceError`] taxonomy as [`Instance::new`].
    pub fn validate(&self) -> Result<(), InstanceError> {
        if self.jobs.is_empty() {
            return Err(InstanceError::Empty);
        }
        for (index, job) in self.jobs.iter().enumerate() {
            if !job.is_valid() {
                return Err(InstanceError::InvalidJob { index, job: *job });
            }
        }
        let mut ids: Vec<u32> = self.jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(InstanceError::DuplicateId { id: pair[0] });
            }
        }
        Ok(())
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Always false (construction rejects empty instances); provided for
    /// clippy-idiomatic call sites.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs, sorted by release time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Consume the instance, returning the job vector (sorted by
    /// release). Lets allocation-pooling callers reclaim the buffer they
    /// handed to [`Instance::new`] instead of dropping it per run.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }

    /// Job at sorted position `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn job(&self, i: usize) -> &Job {
        &self.jobs[i]
    }

    /// Release time of sorted job `i`.
    pub fn release(&self, i: usize) -> f64 {
        self.jobs[i].release
    }

    /// Work of sorted job `i`.
    pub fn work(&self, i: usize) -> f64 {
        self.jobs[i].work
    }

    /// Total work of jobs `lo..hi` (half-open, sorted positions), via the
    /// compensated prefix table — O(1).
    pub fn work_range(&self, lo: usize, hi: usize) -> f64 {
        self.prefix_work[hi] - self.prefix_work[lo]
    }

    /// Total work of the whole instance.
    pub fn total_work(&self) -> f64 {
        *self.prefix_work.last().expect("non-empty")
    }

    /// Earliest release.
    pub fn first_release(&self) -> f64 {
        self.jobs[0].release
    }

    /// Latest release.
    pub fn last_release(&self) -> f64 {
        self.jobs[self.jobs.len() - 1].release
    }

    /// Whether all jobs need the same work (within `tol`, relative).
    ///
    /// The flow algorithms (paper §4) and the multiprocessor algorithms
    /// (§5, Theorem 10) require equal-work jobs.
    pub fn is_equal_work(&self, tol: f64) -> bool {
        let w0 = self.jobs[0].work;
        self.jobs
            .iter()
            .all(|j| (j.work - w0).abs() <= tol * w0.abs())
    }

    /// Whether every job is released at time 0 (within `tol`), the
    /// special case of Theorem 11 and of Pruhs–van Stee–Uthaisombut.
    pub fn all_released_immediately(&self, tol: f64) -> bool {
        self.last_release() <= tol
    }

    /// The sub-instance containing the sorted jobs at `positions`,
    /// preserving ids. Used to split work across processors.
    ///
    /// # Errors
    /// [`InstanceError::Empty`] when `positions` is empty.
    pub fn subset(&self, positions: &[usize]) -> Result<Instance, InstanceError> {
        Instance::new(positions.iter().map(|&p| self.jobs[p]).collect())
    }

    /// Shift every release by `delta` (≥ `-first_release()`, so releases
    /// stay non-negative). Under any power model the optimal schedules
    /// shift rigidly with the instance, so `makespan(E)` shifts by
    /// exactly `delta` — a scaling law the property tests exploit.
    ///
    /// # Errors
    /// [`InstanceError::InvalidJob`] when a shifted release would be
    /// negative.
    pub fn shift_time(&self, delta: f64) -> Result<Instance, InstanceError> {
        Instance::new(
            self.jobs
                .iter()
                .map(|j| Job::new(j.id, j.release + delta, j.work))
                .collect(),
        )
    }

    /// Scale every release by `c > 0` *and* every work by `c`. Under
    /// `P = σ^α` this dilation maps optimal schedules onto optimal
    /// schedules with unchanged speeds: makespan scales by `c`, energy
    /// by `c` — the second scaling law used by the property tests.
    ///
    /// # Errors
    /// [`InstanceError::InvalidJob`] on non-positive/overflowing scales.
    pub fn dilate(&self, c: f64) -> Result<Instance, InstanceError> {
        Instance::new(
            self.jobs
                .iter()
                .map(|j| Job::new(j.id, j.release * c, j.work * c))
                .collect(),
        )
    }
}

impl TryFrom<Vec<Job>> for Instance {
    type Error = InstanceError;
    fn try_from(jobs: Vec<Job>) -> Result<Self, Self::Error> {
        Instance::new(jobs)
    }
}

impl From<Instance> for Vec<Job> {
    fn from(inst: Instance) -> Vec<Job> {
        inst.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_by_release_keeping_ids() {
        let inst = Instance::new(vec![
            Job::new(7, 5.0, 2.0),
            Job::new(3, 0.0, 5.0),
            Job::new(9, 6.0, 1.0),
        ])
        .unwrap();
        let ids: Vec<u32> = inst.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![3, 7, 9]);
        assert_eq!(inst.release(0), 0.0);
        assert_eq!(inst.release(2), 6.0);
    }

    #[test]
    fn stable_sort_preserves_tie_order() {
        let inst = Instance::new(vec![
            Job::new(0, 1.0, 1.0),
            Job::new(1, 1.0, 2.0),
            Job::new(2, 1.0, 3.0),
        ])
        .unwrap();
        let ids: Vec<u32> = inst.jobs().iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(Instance::new(vec![]).unwrap_err(), InstanceError::Empty);
        assert!(matches!(
            Instance::from_pairs(&[(0.0, 1.0), (1.0, -2.0)]),
            Err(InstanceError::InvalidJob { index: 1, .. })
        ));
        assert!(matches!(
            Instance::new(vec![Job::new(1, 0.0, 1.0), Job::new(1, 2.0, 1.0)]),
            Err(InstanceError::DuplicateId { id: 1 })
        ));
    }

    #[test]
    fn validate_accepts_constructed_instances() {
        let inst = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0)]).unwrap();
        inst.validate().unwrap();
        inst.shift_time(1.0).unwrap().validate().unwrap();
    }

    #[test]
    fn prefix_work_ranges() {
        let inst = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
        assert_eq!(inst.total_work(), 8.0);
        assert_eq!(inst.work_range(0, 3), 8.0);
        assert_eq!(inst.work_range(1, 3), 3.0);
        assert_eq!(inst.work_range(1, 1), 0.0);
        assert_eq!(inst.work_range(0, 1), 5.0);
    }

    #[test]
    fn equal_work_detection() {
        let eq = Instance::equal_work(&[0.0, 0.0, 1.0], 1.0).unwrap();
        assert!(eq.is_equal_work(1e-12));
        let uneq = Instance::from_pairs(&[(0.0, 1.0), (1.0, 2.0)]).unwrap();
        assert!(!uneq.is_equal_work(1e-12));
    }

    #[test]
    fn immediate_release_detection() {
        let now = Instance::from_pairs(&[(0.0, 1.0), (0.0, 2.0)]).unwrap();
        assert!(now.all_released_immediately(1e-12));
        let later = Instance::from_pairs(&[(0.0, 1.0), (3.0, 2.0)]).unwrap();
        assert!(!later.all_released_immediately(1e-12));
    }

    #[test]
    fn subset_preserves_jobs() {
        let inst = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
        let sub = inst.subset(&[0, 2]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.job(1).work, 1.0);
        assert!(inst.subset(&[]).is_err());
    }

    #[test]
    fn shift_and_dilate() {
        let inst = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
        let shifted = inst.shift_time(2.5).unwrap();
        assert_eq!(shifted.release(0), 2.5);
        assert_eq!(shifted.release(2), 8.5);
        assert_eq!(shifted.total_work(), inst.total_work());
        assert!(inst.shift_time(-1.0).is_err());

        let dilated = inst.dilate(2.0).unwrap();
        assert_eq!(dilated.release(1), 10.0);
        assert_eq!(dilated.work(0), 10.0);
        assert!(inst.dilate(0.0).is_err());
        assert!(inst.dilate(-2.0).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let inst = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn serde_rejects_invalid() {
        let json = r#"[{"id":0,"release":-1.0,"work":1.0}]"#;
        assert!(serde_json::from_str::<Instance>(json).is_err());
    }
}
