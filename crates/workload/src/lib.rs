//! # pas-workload
//!
//! The job/instance model and workload generators for the
//! `power-aware-scheduling` workspace.
//!
//! The paper's input model (§1): `n` jobs `J_1 … J_n`, each with a release
//! time `r_i` (earliest start) and a **work requirement** `w_i` (not a
//! processing time — the processing time is `w_i/σ` and only known once
//! the scheduler picks speeds). [`Instance`] captures exactly that, kept
//! sorted by release time because every algorithm in the paper assumes
//! `r_1 ≤ r_2 ≤ … ≤ r_n` (Lemma 3 lets them).
//!
//! [`generators`] provides seeded, reproducible workload families used by
//! the test suite and the benchmark harness: uniform random, Poisson and
//! bursty arrival processes, equal-work streams (for the flow and
//! multiprocessor algorithms that require them), adversarial staircases
//! (worst cases for block merging), and Partition-derived instances (the
//! NP-hardness reduction of Theorem 11).
//!
//! With the `proptest-support` feature, the `strategies` module exposes proptest
//! generators for property-based tests across the workspace.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod generators;
pub mod instance;
pub mod io;
pub mod job;
#[cfg(feature = "proptest-support")]
pub mod strategies;

pub use instance::{Instance, InstanceError};
pub use job::Job;
