//! Plain-text trace I/O for instances.
//!
//! Besides the serde/JSON round trip, real workloads often arrive as CSV
//! traces (`release,work` per line, optional `id` column and `#`
//! comments). These helpers parse and emit that format with precise
//! error positions, so downstream users can feed their own traces to the
//! schedulers without writing parsers.

use crate::instance::{Instance, InstanceError};
use crate::job::Job;

/// Errors from [`parse_csv`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// The parsed jobs do not form a valid instance.
    Invalid(InstanceError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            TraceError::Invalid(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parse a CSV trace.
///
/// Accepted per line (after trimming): `release,work` or
/// `id,release,work`. Blank lines and lines starting with `#` are
/// skipped. A header line `release,work` / `id,release,work` is skipped
/// if present. Two-column rows are assigned ids by position.
///
/// # Errors
/// [`TraceError`] with the offending line number.
pub fn parse_csv(text: &str) -> Result<Instance, TraceError> {
    let mut jobs = Vec::new();
    let mut next_auto_id = 0u32;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        // Skip a header row.
        if idx == 0 && cells.iter().any(|c| c.eq_ignore_ascii_case("release")) {
            continue;
        }
        let job = match cells.as_slice() {
            [release, work] => {
                let job = Job::new(
                    next_auto_id,
                    parse_num(release, line_no, "release")?,
                    parse_num(work, line_no, "work")?,
                );
                next_auto_id += 1;
                job
            }
            [id, release, work] => Job::new(
                id.parse().map_err(|_| TraceError::BadLine {
                    line: line_no,
                    reason: format!("bad id {id:?}"),
                })?,
                parse_num(release, line_no, "release")?,
                parse_num(work, line_no, "work")?,
            ),
            _ => {
                return Err(TraceError::BadLine {
                    line: line_no,
                    reason: format!("expected 2 or 3 columns, got {}", cells.len()),
                })
            }
        };
        jobs.push(job);
    }
    Instance::new(jobs).map_err(TraceError::Invalid)
}

fn parse_num(cell: &str, line: usize, what: &str) -> Result<f64, TraceError> {
    cell.parse().map_err(|_| TraceError::BadLine {
        line,
        reason: format!("bad {what} {cell:?}"),
    })
}

/// Emit an instance as a CSV trace (`id,release,work` with a header).
pub fn to_csv(instance: &Instance) -> String {
    let mut out = String::from("id,release,work\n");
    for j in instance.jobs() {
        out.push_str(&format!("{},{},{}\n", j.id, j.release, j.work));
    }
    out
}

/// Bit-exact `f64` encoding: the 16-hex-digit IEEE-754 bit pattern.
///
/// Decimal formatting is shortest-round-trip in Rust, but serialized
/// traces that must replay **bit-identically** (the fleet event trace,
/// the serve journal) encode raw bits instead, so no parser in any
/// language can reintroduce rounding. Inverse: [`f64_from_hex`].
pub fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Decode a [`f64_to_hex`] bit pattern; `None` for anything that is not
/// exactly 16 hex digits.
pub fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_column_trace() {
        let inst = parse_csv("0.0,5.0\n5.0,2.0\n6.0,1.0\n").unwrap();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.total_work(), 8.0);
        assert_eq!(inst.job(0).id, 0);
    }

    #[test]
    fn three_column_with_header_and_comments() {
        let text = "id,release,work\n# the paper instance\n7,0.0,5.0\n\n3,5.0,2.0\n";
        let inst = parse_csv(text).unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.job(0).id, 7);
    }

    #[test]
    fn round_trip() {
        let inst = parse_csv("0.0,5.0\n5.0,2.0\n").unwrap();
        let back = parse_csv(&to_csv(&inst)).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn error_positions() {
        let err = parse_csv("0.0,5.0\nnot,a,number\n").unwrap_err();
        assert!(matches!(err, TraceError::BadLine { line: 2, .. }), "{err}");
        let err = parse_csv("1,2,3,4\n").unwrap_err();
        assert!(matches!(err, TraceError::BadLine { line: 1, .. }));
        let err = parse_csv("0.0,-5.0\n").unwrap_err();
        assert!(matches!(err, TraceError::Invalid(_)));
        let err = parse_csv("").unwrap_err();
        assert!(matches!(err, TraceError::Invalid(InstanceError::Empty)));
    }

    #[test]
    fn whitespace_tolerant() {
        let inst = parse_csv("  0.0 , 5.0 \n 5.0,2.0").unwrap();
        assert_eq!(inst.len(), 2);
    }

    #[test]
    fn hex_codec_is_bit_exact() {
        for &x in &[
            0.0,
            -0.0,
            1.0,
            0.1 + 0.2, // not representable as a short decimal
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
            1e-308 / 7.0, // subnormal
        ] {
            let hex = f64_to_hex(x);
            assert_eq!(hex.len(), 16);
            let back = f64_from_hex(&hex).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {hex}");
        }
        // NaN round-trips its payload bits too.
        let nan_hex = f64_to_hex(f64::NAN);
        assert_eq!(
            f64_from_hex(&nan_hex).unwrap().to_bits(),
            f64::NAN.to_bits()
        );
    }

    #[test]
    fn hex_codec_rejects_malformed() {
        assert_eq!(f64_from_hex(""), None);
        assert_eq!(f64_from_hex("3ff"), None);
        assert_eq!(f64_from_hex("3ff0000000000000ff"), None);
        assert_eq!(f64_from_hex("zzzzzzzzzzzzzzzz"), None);
    }
}
