//! Data-oriented job-state arena for the online engine.
//!
//! [`ShardedReadySet`] replaces the AoS `Vec<PendingJob>` behind the
//! original [`ReadySet`](crate::online::ReadySet) with a
//! struct-of-arrays slab: one parallel array per field (`ids`,
//! `releases`, `works`, `remainings`), stable slots recycled through a
//! free list, and a `BandLedger` sharding the live jobs by *deadline
//! band* — `NUM_BANDS` equal-width release-time bands (under the
//! engine's uniform SLO, a job's deadline is its release plus a
//! constant, so release bands and deadline bands coincide). The ledger
//! maintains per-band live counts, remaining work, and total arrived
//! work incrementally, which is what the windowed-density policies
//! (`Bkp` in `pas-core::online`) consume in `O(bands)` per decision.
//!
//! Arrivals are ingested in batches: the engine hands the whole run of
//! due jobs to `admit_batch`, which
//! grows every array once and then applies the per-job accumulator
//! updates in arrival order — the floating-point operation sequence is
//! exactly the one-at-a-time sequence, so batching changes throughput,
//! never bits.
//!
//! # Bit-identity contract
//!
//! The arena and the retained reference implementation answer every
//! observation the engine or a policy can make with the *same bits*:
//! both run the identical per-job accumulator updates in the identical
//! (admission) order, and both delegate band accounting to this
//! module's `BandLedger` so the shard arithmetic is literally the same
//! code. `tests/online_equivalence.rs` holds the two engines to that
//! contract across proptested event streams, fault plans, and
//! crash/restore cuts.

use crate::online::{PendingJob, ReadyStore, ReadyView};
use pas_workload::Job;
use std::collections::{HashMap, VecDeque};

/// Number of deadline bands the ready set is sharded into.
pub const NUM_BANDS: usize = 8;

/// Per-band aggregate shards over the released jobs.
///
/// Bands partition release time into `NUM_BANDS` equal windows of
/// `width` starting at `origin` (both fixed for a run, derived from the
/// materialized arrival stream); releases past the last edge clamp into
/// the final band. All three aggregates are running sums maintained
/// with one addition or subtraction per engine mutation, so both
/// ready-set implementations produce bit-identical band values by
/// sharing this type.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BandLedger {
    origin: f64,
    width: f64,
    /// Live (admitted, unfinished) jobs per band.
    live: Vec<u64>,
    /// Remaining work of the live jobs per band.
    remaining: Vec<f64>,
    /// Total work ever admitted per band (finished or not).
    arrived: Vec<f64>,
}

impl Default for BandLedger {
    fn default() -> BandLedger {
        BandLedger::new(0.0, 1.0)
    }
}

impl BandLedger {
    pub(crate) fn new(origin: f64, width: f64) -> BandLedger {
        debug_assert!(width > 0.0, "band width must be positive, got {width}");
        BandLedger {
            origin,
            width,
            live: vec![0; NUM_BANDS],
            remaining: vec![0.0; NUM_BANDS],
            arrived: vec![0.0; NUM_BANDS],
        }
    }

    /// Band index for a release time (clamped into `0..NUM_BANDS`).
    pub(crate) fn band_of(&self, release: f64) -> usize {
        let b = ((release - self.origin) / self.width).floor();
        if b.is_nan() || b < 0.0 {
            0
        } else {
            (b as usize).min(NUM_BANDS - 1)
        }
    }

    pub(crate) fn on_admit(&mut self, job: &PendingJob) {
        let b = self.band_of(job.release);
        self.live[b] += 1;
        self.remaining[b] += job.remaining;
        self.arrived[b] += job.work;
    }

    pub(crate) fn on_execute(&mut self, release: f64, executed: f64) {
        let b = self.band_of(release);
        self.remaining[b] -= executed;
    }

    /// A job leaves the set (completion, cancellation, eviction): its
    /// residual remaining work leaves the band, its arrived work stays.
    pub(crate) fn on_remove(&mut self, job: &PendingJob) {
        let b = self.band_of(job.release);
        self.live[b] -= 1;
        self.remaining[b] -= job.remaining;
    }

    /// A lose-progress crash put `done` units back on a job's plate.
    pub(crate) fn on_reset(&mut self, release: f64, done: f64) {
        let b = self.band_of(release);
        self.remaining[b] += done;
    }

    /// Re-arm the ledger for a fresh run: new band geometry, all
    /// aggregates zeroed, the band vectors themselves reused.
    pub(crate) fn reset(&mut self, origin: f64, width: f64) {
        debug_assert!(width > 0.0, "band width must be positive, got {width}");
        self.origin = origin;
        self.width = width;
        self.live.iter_mut().for_each(|v| *v = 0);
        self.remaining.iter_mut().for_each(|v| *v = 0.0);
        self.arrived.iter_mut().for_each(|v| *v = 0.0);
    }

    pub(crate) fn origin(&self) -> f64 {
        self.origin
    }

    pub(crate) fn width(&self) -> f64 {
        self.width
    }

    pub(crate) fn live(&self, band: usize) -> usize {
        self.live[band] as usize
    }

    pub(crate) fn remaining(&self, band: usize) -> f64 {
        self.remaining[band]
    }

    pub(crate) fn arrived(&self, band: usize) -> f64 {
        self.arrived[band]
    }

    /// Snapshot parts `(origin, width, live, remaining, arrived)`; the
    /// running sums must be persisted bitwise, never recomputed.
    pub(crate) fn parts(&self) -> (f64, f64, &[u64], &[f64], &[f64]) {
        (
            self.origin,
            self.width,
            &self.live,
            &self.remaining,
            &self.arrived,
        )
    }

    /// Rebuild from snapshot parts, bit-identical to the captured
    /// ledger.
    pub(crate) fn restore(
        origin: f64,
        width: f64,
        live: Vec<u64>,
        remaining: Vec<f64>,
        arrived: Vec<f64>,
    ) -> BandLedger {
        BandLedger {
            origin,
            width,
            live,
            remaining,
            arrived,
        }
    }
}

/// Struct-of-arrays arena behind the online engine: the data-oriented
/// replacement for [`ReadySet`](crate::online::ReadySet).
///
/// Jobs live in parallel arrays indexed by *slot*; a slot is stable for
/// a job's whole residency (no swap-remove compaction), vacated slots
/// are recycled LIFO through a free list, and `slot_of` resolves ids in
/// `O(1)`. The admission-order id queue makes
/// [`first`](ReadyView::first) `O(1)` and gives every policy-visible
/// iteration ([`ReadyView::for_each`]) a canonical order. Band
/// aggregates are served by the shared `BandLedger`.
///
/// Policies never see this type directly — they see the
/// [`ReadyView`] trait — so the arena is interchangeable with the
/// retained reference implementation, a contract enforced bit-for-bit
/// by `tests/online_equivalence.rs`.
#[derive(Debug, Clone, Default)]
pub struct ShardedReadySet {
    ids: Vec<u32>,
    releases: Vec<f64>,
    works: Vec<f64>,
    remainings: Vec<f64>,
    /// Vacant slots, recycled LIFO. Vacant array cells keep their stale
    /// values — they are unreachable (not in `slot_of`, skipped by the
    /// queue) and fully overwritten on reuse.
    free: Vec<usize>,
    slot_of: HashMap<u32, usize>,
    /// Ids in admission order; the front is always live (pruned on
    /// removal), stale interior ids are skipped during iteration.
    queue: VecDeque<u32>,
    backlog: f64,
    seen_work: f64,
    first_arrival: Option<f64>,
    bands: BandLedger,
}

impl ShardedReadySet {
    fn place(&mut self, job: PendingJob) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.ids[slot] = job.id;
                self.releases[slot] = job.release;
                self.works[slot] = job.work;
                self.remainings[slot] = job.remaining;
                slot
            }
            None => {
                let slot = self.ids.len();
                self.ids.push(job.id);
                self.releases.push(job.release);
                self.works.push(job.work);
                self.remainings.push(job.remaining);
                slot
            }
        }
    }

    fn job_at(&self, slot: usize) -> PendingJob {
        PendingJob {
            id: self.ids[slot],
            release: self.releases[slot],
            work: self.works[slot],
            remaining: self.remainings[slot],
        }
    }

    /// Snapshot parts for the journal codec: `(slot_count, live slots
    /// as (slot, job) in slot order, free list in pop order last-first,
    /// queue, backlog, seen_work, first_arrival)`. Stale cell contents
    /// are *not* captured — they are unobservable — but the free-list
    /// order is, because it decides which slot the next admit reuses.
    #[allow(clippy::type_complexity)]
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        usize,
        Vec<(usize, PendingJob)>,
        &[usize],
        &VecDeque<u32>,
        f64,
        f64,
        Option<f64>,
    ) {
        let mut live: Vec<(usize, PendingJob)> = Vec::with_capacity(self.slot_of.len());
        for slot in 0..self.ids.len() {
            if self.slot_of.get(&self.ids[slot]) == Some(&slot) {
                live.push((slot, self.job_at(slot)));
            }
        }
        (
            self.ids.len(),
            live,
            &self.free,
            &self.queue,
            self.backlog,
            self.seen_work,
            self.first_arrival,
        )
    }

    pub(crate) fn bands(&self) -> &BandLedger {
        &self.bands
    }

    /// Clear the arena for a fresh run with new band geometry, keeping
    /// every allocation: lane vectors, free list, id map, and queue all
    /// retain their capacity. A recycled arena is observationally
    /// identical to `with_bands(origin, width)` — same (empty) logical
    /// state, same accumulator bits — which is what lets the fleet
    /// executor's worker-local scratch pools reuse one arena across
    /// hosts without perturbing any digest.
    pub(crate) fn recycle(&mut self, origin: f64, width: f64) {
        self.ids.clear();
        self.releases.clear();
        self.works.clear();
        self.remainings.clear();
        self.free.clear();
        self.slot_of.clear();
        self.queue.clear();
        self.backlog = 0.0;
        self.seen_work = 0.0;
        self.first_arrival = None;
        self.bands.reset(origin, width);
    }

    /// Pre-size every lane (and the id map / queue) for `jobs` residents
    /// so a run admits without growing.
    pub(crate) fn reserve_slots(&mut self, jobs: usize) {
        self.ids.reserve(jobs);
        self.releases.reserve(jobs);
        self.works.reserve(jobs);
        self.remainings.reserve(jobs);
        self.slot_of.reserve(jobs);
        self.queue.reserve(jobs);
    }

    /// Rebuild an arena from snapshot parts, bit-identical to the
    /// captured one: same slots, same free-list order, same queue, same
    /// accumulator and ledger bits (`slot_of` is derived; vacant cells
    /// are zeroed, which is unobservable).
    #[allow(clippy::too_many_arguments)] // snapshot parts arrive as one flat record
    pub(crate) fn restore(
        slot_count: usize,
        live: Vec<(usize, PendingJob)>,
        free: Vec<usize>,
        queue: VecDeque<u32>,
        backlog: f64,
        seen_work: f64,
        first_arrival: Option<f64>,
        bands: BandLedger,
    ) -> ShardedReadySet {
        let mut set = ShardedReadySet {
            ids: vec![0; slot_count],
            releases: vec![0.0; slot_count],
            works: vec![0.0; slot_count],
            remainings: vec![0.0; slot_count],
            free,
            slot_of: HashMap::with_capacity(live.len()),
            queue,
            backlog,
            seen_work,
            first_arrival,
            bands,
        };
        for (slot, job) in live {
            set.ids[slot] = job.id;
            set.releases[slot] = job.release;
            set.works[slot] = job.work;
            set.remainings[slot] = job.remaining;
            set.slot_of.insert(job.id, slot);
        }
        set
    }
}

impl ReadyView for ShardedReadySet {
    fn len(&self) -> usize {
        self.slot_of.len()
    }

    fn first(&self) -> Option<PendingJob> {
        let &id = self.queue.front()?;
        self.get(id)
    }

    fn get(&self, id: u32) -> Option<PendingJob> {
        self.slot_of.get(&id).map(|&s| self.job_at(s))
    }

    fn backlog(&self) -> f64 {
        self.backlog
    }

    fn seen_work(&self) -> f64 {
        self.seen_work
    }

    fn first_arrival(&self) -> Option<f64> {
        self.first_arrival
    }

    fn for_each(&self, f: &mut dyn FnMut(&PendingJob)) {
        for id in &self.queue {
            if let Some(&slot) = self.slot_of.get(id) {
                f(&self.job_at(slot));
            }
        }
    }

    fn band_count(&self) -> usize {
        NUM_BANDS
    }

    fn band_origin(&self) -> f64 {
        self.bands.origin()
    }

    fn band_width(&self) -> f64 {
        self.bands.width()
    }

    fn band_live(&self, band: usize) -> usize {
        self.bands.live(band)
    }

    fn band_remaining(&self, band: usize) -> f64 {
        self.bands.remaining(band)
    }

    fn band_arrived(&self, band: usize) -> f64 {
        self.bands.arrived(band)
    }
}

impl ReadyStore for ShardedReadySet {
    fn with_bands(origin: f64, width: f64) -> ShardedReadySet {
        ShardedReadySet {
            bands: BandLedger::new(origin, width),
            ..ShardedReadySet::default()
        }
    }

    fn admit(&mut self, job: PendingJob) {
        self.seen_work += job.work;
        self.first_arrival.get_or_insert(job.release);
        self.backlog += job.remaining;
        self.bands.on_admit(&job);
        let slot = self.place(job);
        self.slot_of.insert(job.id, slot);
        self.queue.push_back(job.id);
    }

    fn admit_batch(&mut self, jobs: &[Job]) {
        // Grow every array once; the per-job updates then run in
        // arrival order with exactly the one-at-a-time operation
        // sequence (bit-identity over throughput).
        let fresh = jobs.len().saturating_sub(self.free.len());
        self.ids.reserve(fresh);
        self.releases.reserve(fresh);
        self.works.reserve(fresh);
        self.remainings.reserve(fresh);
        self.slot_of.reserve(jobs.len());
        self.queue.reserve(jobs.len());
        for j in jobs {
            self.admit(PendingJob {
                id: j.id,
                release: j.release,
                work: j.work,
                remaining: j.work,
            });
        }
    }

    fn slot(&self, id: u32) -> Option<usize> {
        self.slot_of.get(&id).copied()
    }

    fn remaining_at(&self, slot: usize) -> f64 {
        self.remainings[slot]
    }

    fn work_at(&self, slot: usize) -> f64 {
        self.works[slot]
    }

    fn execute(&mut self, slot: usize, executed: f64) {
        self.remainings[slot] -= executed;
        self.backlog -= executed;
        self.bands.on_execute(self.releases[slot], executed);
    }

    fn remove(&mut self, slot: usize) {
        let job = self.job_at(slot);
        self.backlog -= job.remaining;
        self.bands.on_remove(&job);
        self.slot_of.remove(&job.id);
        self.free.push(slot);
        // Keep the queue front live so `first` stays O(1).
        while let Some(front) = self.queue.front() {
            if self.slot_of.contains_key(front) {
                break;
            }
            self.queue.pop_front();
        }
    }

    fn reset_progress(&mut self) -> f64 {
        // Canonical admission order: both implementations sum the
        // erased progress over the queue, so the running total sees the
        // same additions in the same order.
        let mut erased = 0.0;
        for i in 0..self.queue.len() {
            let id = self.queue[i];
            let Some(&slot) = self.slot_of.get(&id) else {
                continue;
            };
            let done = self.works[slot] - self.remainings[slot];
            if done > 0.0 {
                erased += done;
                self.remainings[slot] = self.works[slot];
                self.bands.on_reset(self.releases[slot], done);
            }
        }
        self.backlog += erased;
        erased
    }

    fn cancel(&mut self, id: u32) -> Option<PendingJob> {
        let &slot = self.slot_of.get(&id)?;
        let job = self.job_at(slot);
        self.remove(slot);
        Some(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pj(id: u32, release: f64, work: f64) -> PendingJob {
        PendingJob {
            id,
            release,
            work,
            remaining: work,
        }
    }

    #[test]
    fn slots_are_stable_and_recycled() {
        let mut set = ShardedReadySet::with_bands(0.0, 1.0);
        set.admit(pj(0, 0.0, 2.0));
        set.admit(pj(1, 1.0, 3.0));
        set.admit(pj(2, 2.0, 4.0));
        let s1 = set.slot(1).unwrap();
        // Removing the middle job must not move anyone else.
        set.remove(s1);
        assert_eq!(set.slot(0), Some(0));
        assert_eq!(set.slot(2), Some(2));
        // The vacated slot is reused by the next admit.
        set.admit(pj(3, 3.0, 1.0));
        assert_eq!(set.slot(3), Some(s1));
        assert_eq!(set.len(), 3);
        assert_eq!(set.get(3).unwrap().work, 1.0);
    }

    #[test]
    fn iteration_is_admission_order_and_skips_dead_ids() {
        let mut set = ShardedReadySet::with_bands(0.0, 1.0);
        for id in 0..5 {
            set.admit(pj(id, id as f64, 1.0));
        }
        set.cancel(2).unwrap();
        set.cancel(0).unwrap();
        let mut seen = Vec::new();
        set.for_each(&mut |p| seen.push(p.id));
        assert_eq!(seen, vec![1, 3, 4]);
        assert_eq!(set.first().unwrap().id, 1);
    }

    #[test]
    fn band_ledger_tracks_admit_execute_remove_reset() {
        let mut set = ShardedReadySet::with_bands(0.0, 2.0);
        set.admit(pj(0, 0.5, 4.0)); // band 0
        set.admit(pj(1, 5.0, 2.0)); // band 2
        set.admit(pj(2, 100.0, 1.0)); // clamps into band 7
        assert_eq!(set.band_live(0), 1);
        assert_eq!(set.band_live(2), 1);
        assert_eq!(set.band_live(7), 1);
        assert_eq!(set.band_arrived(0), 4.0);

        let s0 = set.slot(0).unwrap();
        set.execute(s0, 1.5);
        assert_eq!(set.band_remaining(0), 2.5);
        // Reset puts the executed work back.
        let erased = set.reset_progress();
        assert_eq!(erased, 1.5);
        assert_eq!(set.band_remaining(0), 4.0);

        set.cancel(1).unwrap();
        assert_eq!(set.band_live(2), 0);
        assert_eq!(set.band_remaining(2), 0.0);
        assert_eq!(set.band_arrived(2), 2.0, "arrived work survives removal");
    }

    #[test]
    fn recycled_arena_is_indistinguishable_from_fresh() {
        let mut used = ShardedReadySet::with_bands(0.0, 1.0);
        for id in 0..6 {
            used.admit(pj(id, 0.4 * id as f64, 1.0 + id as f64));
        }
        let s = used.slot(2).unwrap();
        used.execute(s, 0.5);
        used.remove(s);
        used.cancel(4).unwrap();
        used.recycle(3.0, 2.5);
        used.reserve_slots(4);

        let mut fresh = ShardedReadySet::with_bands(3.0, 2.5);
        // Drive both through the same post-recycle history and compare
        // every observable.
        for set in [&mut used, &mut fresh] {
            set.admit(pj(10, 3.5, 2.0));
            set.admit(pj(11, 6.0, 1.0));
            let s = set.slot(10).unwrap();
            set.execute(s, 0.25);
        }
        assert_eq!(used.len(), fresh.len());
        assert_eq!(used.backlog().to_bits(), fresh.backlog().to_bits());
        assert_eq!(used.seen_work().to_bits(), fresh.seen_work().to_bits());
        assert_eq!(used.first_arrival(), fresh.first_arrival());
        assert_eq!(used.bands(), fresh.bands());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        used.for_each(&mut |p| a.push(*p));
        fresh.for_each(&mut |p| b.push(*p));
        assert_eq!(a, b);
        // Slot assignment restarts from zero after a recycle.
        assert_eq!(used.slot(10), fresh.slot(10));
    }

    #[test]
    fn snapshot_round_trips_bitwise() {
        let mut set = ShardedReadySet::with_bands(0.0, 1.0);
        for id in 0..4 {
            set.admit(pj(id, 0.3 * id as f64, 1.0 + id as f64));
        }
        let s = set.slot(1).unwrap();
        set.execute(s, 0.7);
        set.remove(s);
        set.cancel(3).unwrap();

        let (count, live, free, queue, backlog, seen, first) = set.snapshot_parts();
        let restored = ShardedReadySet::restore(
            count,
            live,
            free.to_vec(),
            queue.clone(),
            backlog,
            seen,
            first,
            set.bands().clone(),
        );
        assert_eq!(restored.len(), set.len());
        assert_eq!(restored.backlog().to_bits(), set.backlog().to_bits());
        assert_eq!(restored.seen_work().to_bits(), set.seen_work().to_bits());
        assert_eq!(restored.bands(), set.bands());
        // Behavioral equivalence after restore: the next admit reuses
        // the same slot in both.
        let mut a = set.clone();
        let mut b = restored;
        a.admit(pj(9, 4.0, 2.0));
        b.admit(pj(9, 4.0, 2.0));
        assert_eq!(a.slot(9), b.slot(9));
        let mut ja = Vec::new();
        let mut jb = Vec::new();
        a.for_each(&mut |p| ja.push(*p));
        b.for_each(&mut |p| jb.push(*p));
        assert_eq!(ja, jb);
    }
}
