//! A constant-speed execution interval of one job.

/// One maximal interval during which a single job runs at constant speed.
///
/// Lemma 2 of the paper says optimal schedules run each job at one speed,
/// but the representation allows many slices per job so that preemptive
/// baselines (YDS, AVR) and discrete-speed emulations (two slices per
/// block) are expressible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slice {
    /// Id of the job being run (the caller-facing `Job::id`).
    pub job: u32,
    /// Interval start time.
    pub start: f64,
    /// Interval end time (`> start`).
    pub end: f64,
    /// Constant speed over the interval (`> 0`).
    pub speed: f64,
}

impl Slice {
    /// Construct a slice.
    pub fn new(job: u32, start: f64, end: f64, speed: f64) -> Self {
        Slice {
            job,
            start,
            end,
            speed,
        }
    }

    /// Interval length.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Work completed: `speed · duration`.
    pub fn work(&self) -> f64 {
        self.speed * self.duration()
    }

    /// Structural validity: finite, positive duration, positive speed,
    /// non-negative start.
    pub fn is_valid(&self) -> bool {
        self.start.is_finite()
            && self.end.is_finite()
            && self.speed.is_finite()
            && self.start >= 0.0
            && self.end > self.start
            && self.speed > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_is_speed_times_duration() {
        let s = Slice::new(0, 1.0, 3.0, 2.5);
        assert_eq!(s.duration(), 2.0);
        assert_eq!(s.work(), 5.0);
    }

    #[test]
    fn validity() {
        assert!(Slice::new(0, 0.0, 1.0, 1.0).is_valid());
        assert!(!Slice::new(0, 1.0, 1.0, 1.0).is_valid()); // empty
        assert!(!Slice::new(0, 2.0, 1.0, 1.0).is_valid()); // inverted
        assert!(!Slice::new(0, 0.0, 1.0, 0.0).is_valid()); // zero speed
        assert!(!Slice::new(0, -1.0, 1.0, 1.0).is_valid()); // negative start
        assert!(!Slice::new(0, 0.0, f64::NAN, 1.0).is_valid());
    }
}
