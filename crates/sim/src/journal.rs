//! Write-ahead journal and engine snapshots for the serving layer.
//!
//! The serving loop ([`crate::serve`]) is deterministic given its
//! inputs *except* for wall-clock watchdog decisions, so crash recovery
//! reduces to event sourcing: journal every policy consultation (the
//! applied decision, whether the policy was actually consulted, and
//! whether the watchdog tripped) and periodically checkpoint the full
//! engine state. A restored process replays the journaled decisions —
//! never re-measuring wall time — and lands on a bit-identical
//! [`OnlineOutcome`].
//!
//! # Bit-exactness
//!
//! Every `f64` in a record or snapshot is encoded as its 16-hex-digit
//! IEEE-754 bit pattern, so persistence is exact for *all* values
//! (including the engine's `-inf` downtime sentinel) and independent of
//! any float-formatting subtleties. Aggregate accumulators (backlog,
//! energy, seen work) are persisted rather than recomputed: they are
//! running sums whose rounding history a fresh summation would not
//! reproduce.
//!
//! # Torn tails
//!
//! Records are single lines, flushed per write. A `SIGKILL` can leave
//! at most one torn line at the end of the file; the reader stops at
//! the first malformed line, so recovery resumes from the last durable
//! record.

use crate::arena::{BandLedger, ShardedReadySet};
use crate::faults::{FaultKind, FaultPlan, ResilienceReport};
use crate::online::{AdmissionConfig, Decision, EngineState, OnlineOutcome, PendingJob};
use crate::schedule::Schedule;
use crate::slice::Slice;
use pas_workload::Job;
use serde::Value;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal format version; bumped on any incompatible record change.
/// v2: snapshots encode the sharded-arena ready state (stable slots,
/// free list, band ledger) instead of the dense AoS job vector.
pub const JOURNAL_VERSION: u64 = 2;

/// Failures while writing, parsing, or applying a journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// An I/O failure on the journal file (message of the OS error).
    Io {
        /// Rendered OS error.
        message: String,
    },
    /// A record line failed to parse (torn tails are *not* errors; this
    /// is for structurally bad interior records).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The journal's header does not match the scenario being restored
    /// (different instance, fault plan, or format version).
    ScenarioMismatch {
        /// What differed.
        message: String,
    },
    /// The journal has no usable header record.
    MissingHeader,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { message } => write!(f, "journal I/O error: {message}"),
            JournalError::Malformed { line, message } => {
                write!(f, "malformed journal record at line {line}: {message}")
            }
            JournalError::ScenarioMismatch { message } => {
                write!(f, "journal does not match this scenario: {message}")
            }
            JournalError::MissingHeader => write!(f, "journal has no header record"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(e: std::io::Error) -> JournalError {
    JournalError::Io {
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------
// Bit-exact f64 codec.

fn fb(x: f64) -> Value {
    Value::Str(format!("{:016x}", x.to_bits()))
}

fn pf(v: &Value) -> Result<f64, String> {
    match v {
        Value::Str(s) => u64::from_str_radix(s, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("bad f64 bit pattern `{s}`")),
        _ => Err("expected an f64 bit-pattern string".to_string()),
    }
}

fn pu(v: &Value) -> Result<u64, String> {
    let x = v.as_num().ok_or("expected a number")?;
    if x.fract() != 0.0 || x < 0.0 || x > 2f64.powi(53) {
        return Err(format!("number {x} is not an exact unsigned integer"));
    }
    Ok(x as u64)
}

fn obj_field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, String> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{name}`"))
}

// ---------------------------------------------------------------------
// Scenario and outcome digests (FNV-1a).

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }
}

/// Digest of the serving scenario (materialized arrivals, fault plan,
/// admission config), stored in the journal header so a restore against
/// the wrong instance, plan, or admission policy fails loudly instead
/// of replaying garbage.
pub(crate) fn scenario_digest(
    arrivals: &[Job],
    plan: &FaultPlan,
    admission: Option<&AdmissionConfig>,
) -> u64 {
    let mut h = Fnv::new();
    h.u64(arrivals.len() as u64);
    for j in arrivals {
        h.u64(u64::from(j.id));
        h.f64(j.release);
        h.f64(j.work);
    }
    h.u64(plan.len() as u64);
    for ev in plan.events() {
        h.f64(ev.at);
        match &ev.kind {
            FaultKind::Crash {
                duration,
                semantics,
            } => {
                h.u64(1);
                h.f64(*duration);
                h.u64(matches!(semantics, crate::faults::CrashSemantics::Checkpointed) as u64);
            }
            FaultKind::CancelJob { job } => {
                h.u64(2);
                h.u64(u64::from(*job));
            }
            FaultKind::Throttle { duration, cap } => {
                h.u64(3);
                h.f64(*duration);
                h.f64(*cap);
            }
            FaultKind::ArrivalBurst { jobs } => {
                h.u64(4);
                h.u64(jobs.len() as u64);
                for b in jobs {
                    h.f64(b.offset);
                    h.f64(b.work);
                }
            }
        }
    }
    match plan.slo() {
        Some(slo) => {
            h.u64(1);
            h.f64(slo);
        }
        None => h.u64(0),
    }
    match admission {
        Some(ac) => {
            h.u64(1);
            h.u64(ac.capacity as u64);
            match ac.shed {
                crate::online::ShedPolicy::RejectNewest => h.u64(1),
                crate::online::ShedPolicy::EvictOldest => h.u64(2),
                crate::online::ShedPolicy::DeadlineAware { slo, service_rate } => {
                    h.u64(3);
                    h.f64(slo);
                    h.f64(service_rate);
                }
            }
        }
        None => h.u64(0),
    }
    h.0
}

/// Bitwise digest of an [`OnlineOutcome`]: every schedule slice, the
/// energy total, and the full resilience report. Two outcomes with the
/// same digest are bit-identical in everything the serving layer
/// promises to reproduce; the kill-and-restore CI job diffs this.
pub fn outcome_digest(outcome: &OnlineOutcome) -> u64 {
    let mut h = Fnv::new();
    h.u64(outcome.schedule.machine_count() as u64);
    for lane in outcome.schedule.machines() {
        h.u64(lane.len() as u64);
        for s in lane {
            h.u64(u64::from(s.job));
            h.f64(s.start);
            h.f64(s.end);
            h.f64(s.speed);
        }
    }
    h.f64(outcome.energy);
    let r = &outcome.resilience;
    h.u64(r.crashes as u64);
    h.f64(r.downtime);
    h.f64(r.lost_work);
    h.u64(r.cancelled_jobs as u64);
    h.f64(r.cancelled_work);
    h.f64(r.wasted_energy);
    h.u64(r.throttle_clamps as u64);
    h.u64(r.burst_jobs as u64);
    h.u64(r.shed_jobs as u64);
    h.f64(r.shed_work);
    h.u64(r.recovery_latencies.len() as u64);
    for &l in &r.recovery_latencies {
        h.f64(l);
    }
    match r.deadline_misses {
        Some(m) => {
            h.u64(1);
            h.u64(m as u64);
        }
        None => h.u64(0),
    }
    h.0
}

// ---------------------------------------------------------------------
// Records.

/// One journaled policy consultation: the decision the engine applied.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DecisionRecord {
    /// Consultation sequence number (1-based, monotone).
    pub seq: u64,
    /// The applied decision (`None` = idle).
    pub decision: Option<Decision>,
    /// Whether the wrapped policy was actually consulted (false once
    /// the watchdog breaker is open); replay only evolves the policy's
    /// state when it was.
    pub consulted: bool,
    /// Whether this consultation tripped the watchdog (wall-clock
    /// nondeterminism is journaled, never re-measured).
    pub tripped: bool,
}

/// A parsed journal record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Record {
    /// Scenario header (first record of every journal).
    Header {
        /// Format version.
        version: u64,
        /// Materialized arrival count.
        n: u64,
        /// Fault-plan event count.
        events: u64,
        /// [`scenario_digest`] of the inputs.
        digest: u64,
    },
    /// A policy consultation.
    Decision(DecisionRecord),
    /// A full engine checkpoint.
    Snapshot(Box<Snapshot>),
}

// ---------------------------------------------------------------------
// Snapshots.

/// A complete, bit-exact checkpoint of the serving engine between two
/// steps, plus the serving-layer cursors (sequence number, watchdog
/// state, optional policy state).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Snapshot {
    pub next_arrival: u64,
    pub finished: u64,
    pub i_fault: u64,
    pub budget: u64,
    pub in_downtime: bool,
    pub now: f64,
    pub energy: f64,
    pub down_until: f64,
    pub down_since: f64,
    pub erased_this_down: f64,
    pub pending_recoveries: Vec<(f64, f64)>,
    pub throttles: Vec<(f64, f64)>,
    /// Arena extent: total slots (live + vacant).
    pub ready_slot_count: u64,
    /// Live slots as `(slot, job)` in slot order. Vacant cell contents
    /// are unobservable and not captured.
    pub ready_slots: Vec<(u64, PendingJob)>,
    /// Free list in stack order (the tail is popped first); decides
    /// which slot the next admit reuses, so it must be exact.
    pub ready_free: Vec<u64>,
    pub ready_queue: Vec<u32>,
    pub ready_backlog: f64,
    pub ready_seen_work: f64,
    pub ready_first_arrival: Option<f64>,
    /// Band-shard ledger: origin, width, and the per-band running sums
    /// (persisted bitwise, never recomputed).
    pub band_origin: f64,
    pub band_width: f64,
    pub band_live: Vec<u64>,
    pub band_remaining: Vec<f64>,
    pub band_arrived: Vec<f64>,
    pub energy_by_job: Vec<(u32, f64)>,
    pub cancelled_pre: Vec<u32>,
    pub cancelled_all: Vec<u32>,
    pub shed: Vec<u32>,
    pub slices: Vec<Slice>,
    pub report: ResilienceReport,
    /// Consultation count at capture time (replay resumes after it).
    pub seq: u64,
    pub watchdog_trips: u64,
    pub breaker_open: bool,
    /// Policy-internal state from
    /// [`OnlinePolicy::save_state`](crate::online::OnlinePolicy::save_state);
    /// `None` makes the snapshot unusable as a restore base (genesis
    /// replay is used instead).
    pub policy_state: Option<Vec<f64>>,
}

impl Snapshot {
    /// Capture the engine plus serving-layer cursors. Hash sets and
    /// maps are emitted in sorted order so equal states produce equal
    /// snapshots.
    pub(crate) fn capture(
        engine: &EngineState,
        seq: u64,
        watchdog_trips: u64,
        breaker_open: bool,
        policy_state: Option<Vec<f64>>,
    ) -> Snapshot {
        let sorted = |set: &HashSet<u32>| {
            let mut v: Vec<u32> = set.iter().copied().collect();
            v.sort_unstable();
            v
        };
        let mut energy_by_job: Vec<(u32, f64)> =
            engine.energy_by_job.iter().map(|(&k, &v)| (k, v)).collect();
        energy_by_job.sort_unstable_by_key(|&(id, _)| id);
        let (slot_count, live, free, queue, backlog, seen_work, first_arrival) =
            engine.ready.snapshot_parts();
        let (band_origin, band_width, band_live, band_remaining, band_arrived) =
            engine.ready.bands().parts();
        Snapshot {
            next_arrival: engine.next_arrival as u64,
            finished: engine.finished as u64,
            i_fault: engine.i_fault as u64,
            budget: engine.budget as u64,
            in_downtime: engine.in_downtime,
            now: engine.now,
            energy: engine.energy,
            down_until: engine.down_until,
            down_since: engine.down_since,
            erased_this_down: engine.erased_this_down,
            pending_recoveries: engine.pending_recoveries.iter().copied().collect(),
            throttles: engine.throttles.clone(),
            ready_slot_count: slot_count as u64,
            ready_slots: live.into_iter().map(|(s, j)| (s as u64, j)).collect(),
            ready_free: free.iter().map(|&s| s as u64).collect(),
            ready_queue: queue.iter().copied().collect(),
            ready_backlog: backlog,
            ready_seen_work: seen_work,
            ready_first_arrival: first_arrival,
            band_origin,
            band_width,
            band_live: band_live.to_vec(),
            band_remaining: band_remaining.to_vec(),
            band_arrived: band_arrived.to_vec(),
            energy_by_job,
            cancelled_pre: sorted(&engine.cancelled_pre),
            cancelled_all: sorted(&engine.cancelled_all),
            shed: sorted(&engine.shed),
            slices: engine.schedule.machine(0).to_vec(),
            report: engine.report.clone(),
            seq,
            watchdog_trips,
            breaker_open,
            policy_state,
        }
    }

    /// Rebuild the engine exactly as captured. `arrivals`, `plan`, and
    /// `admission` are the (re-materialized) immutable inputs.
    pub(crate) fn restore_engine(
        &self,
        arrivals: Vec<Job>,
        plan: &FaultPlan,
        admission: Option<AdmissionConfig>,
    ) -> EngineState {
        let mut schedule = Schedule::single();
        for s in &self.slices {
            schedule.push(0, *s);
        }
        EngineState {
            n: arrivals.len(),
            arrivals,
            events: plan.events().to_vec(),
            slo: plan.slo(),
            admission,
            report: self.report.clone(),
            next_arrival: self.next_arrival as usize,
            ready: ShardedReadySet::restore(
                self.ready_slot_count as usize,
                self.ready_slots
                    .iter()
                    .map(|&(s, j)| (s as usize, j))
                    .collect(),
                self.ready_free.iter().map(|&s| s as usize).collect(),
                self.ready_queue.iter().copied().collect::<VecDeque<u32>>(),
                self.ready_backlog,
                self.ready_seen_work,
                self.ready_first_arrival,
                BandLedger::restore(
                    self.band_origin,
                    self.band_width,
                    self.band_live.clone(),
                    self.band_remaining.clone(),
                    self.band_arrived.clone(),
                ),
            ),
            finished: self.finished as usize,
            schedule,
            energy: self.energy,
            energy_by_job: self
                .energy_by_job
                .iter()
                .copied()
                .collect::<HashMap<_, _>>(),
            cancelled_pre: self.cancelled_pre.iter().copied().collect(),
            cancelled_all: self.cancelled_all.iter().copied().collect(),
            shed: self.shed.iter().copied().collect(),
            i_fault: self.i_fault as usize,
            in_downtime: self.in_downtime,
            down_until: self.down_until,
            down_since: self.down_since,
            erased_this_down: self.erased_this_down,
            pending_recoveries: self.pending_recoveries.iter().copied().collect(),
            throttles: self.throttles.clone(),
            now: self.now,
            budget: self.budget as usize,
        }
    }

    fn to_value(&self) -> Value {
        let pairs = |xs: &[(f64, f64)]| {
            Value::Arr(
                xs.iter()
                    .map(|&(a, b)| Value::Arr(vec![fb(a), fb(b)]))
                    .collect(),
            )
        };
        let ids = |xs: &[u32]| Value::Arr(xs.iter().map(|&x| Value::Num(f64::from(x))).collect());
        let r = &self.report;
        Value::Obj(vec![
            ("na".into(), Value::Num(self.next_arrival as f64)),
            ("fin".into(), Value::Num(self.finished as f64)),
            ("if".into(), Value::Num(self.i_fault as f64)),
            ("bud".into(), Value::Num(self.budget as f64)),
            ("dn".into(), Value::Bool(self.in_downtime)),
            ("now".into(), fb(self.now)),
            ("en".into(), fb(self.energy)),
            ("du".into(), fb(self.down_until)),
            ("ds".into(), fb(self.down_since)),
            ("ed".into(), fb(self.erased_this_down)),
            ("pr".into(), pairs(&self.pending_recoveries)),
            ("th".into(), pairs(&self.throttles)),
            ("rc".into(), Value::Num(self.ready_slot_count as f64)),
            (
                "rj".into(),
                Value::Arr(
                    self.ready_slots
                        .iter()
                        .map(|&(slot, p)| {
                            Value::Arr(vec![
                                Value::Num(slot as f64),
                                Value::Num(f64::from(p.id)),
                                fb(p.release),
                                fb(p.work),
                                fb(p.remaining),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fl".into(),
                Value::Arr(
                    self.ready_free
                        .iter()
                        .map(|&s| Value::Num(s as f64))
                        .collect(),
                ),
            ),
            ("rq".into(), ids(&self.ready_queue)),
            ("rb".into(), fb(self.ready_backlog)),
            ("rs".into(), fb(self.ready_seen_work)),
            (
                "rf".into(),
                self.ready_first_arrival.map_or(Value::Null, fb),
            ),
            ("bdo".into(), fb(self.band_origin)),
            ("bdw".into(), fb(self.band_width)),
            (
                "bdl".into(),
                Value::Arr(
                    self.band_live
                        .iter()
                        .map(|&c| Value::Num(c as f64))
                        .collect(),
                ),
            ),
            (
                "bdr".into(),
                Value::Arr(self.band_remaining.iter().map(|&x| fb(x)).collect()),
            ),
            (
                "bda".into(),
                Value::Arr(self.band_arrived.iter().map(|&x| fb(x)).collect()),
            ),
            (
                "ej".into(),
                Value::Arr(
                    self.energy_by_job
                        .iter()
                        .map(|&(id, e)| Value::Arr(vec![Value::Num(f64::from(id)), fb(e)]))
                        .collect(),
                ),
            ),
            ("cp".into(), ids(&self.cancelled_pre)),
            ("ca".into(), ids(&self.cancelled_all)),
            ("sh".into(), ids(&self.shed)),
            (
                "sl".into(),
                Value::Arr(
                    self.slices
                        .iter()
                        .map(|s| {
                            Value::Arr(vec![
                                Value::Num(f64::from(s.job)),
                                fb(s.start),
                                fb(s.end),
                                fb(s.speed),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "rep".into(),
                Value::Obj(vec![
                    ("cr".into(), Value::Num(r.crashes as f64)),
                    ("dt".into(), fb(r.downtime)),
                    ("lw".into(), fb(r.lost_work)),
                    ("cj".into(), Value::Num(r.cancelled_jobs as f64)),
                    ("cw".into(), fb(r.cancelled_work)),
                    ("we".into(), fb(r.wasted_energy)),
                    ("tc".into(), Value::Num(r.throttle_clamps as f64)),
                    ("bj".into(), Value::Num(r.burst_jobs as f64)),
                    ("sj".into(), Value::Num(r.shed_jobs as f64)),
                    ("sw".into(), fb(r.shed_work)),
                    (
                        "rl".into(),
                        Value::Arr(r.recovery_latencies.iter().map(|&l| fb(l)).collect()),
                    ),
                    (
                        "dm".into(),
                        r.deadline_misses
                            .map_or(Value::Null, |m| Value::Num(m as f64)),
                    ),
                ]),
            ),
            ("seq".into(), Value::Num(self.seq as f64)),
            ("wt".into(), Value::Num(self.watchdog_trips as f64)),
            ("bo".into(), Value::Bool(self.breaker_open)),
            (
                "ps".into(),
                match &self.policy_state {
                    Some(xs) => Value::Arr(xs.iter().map(|&x| fb(x)).collect()),
                    None => Value::Null,
                },
            ),
        ])
    }

    fn from_value(v: &Value) -> Result<Snapshot, String> {
        let o = v.as_obj().ok_or("snapshot is not an object")?;
        let pairs = |name: &str| -> Result<Vec<(f64, f64)>, String> {
            obj_field(o, name)?
                .as_arr()
                .ok_or_else(|| format!("`{name}` is not an array"))?
                .iter()
                .map(|e| {
                    let xs = e.as_arr().ok_or("pair is not an array")?;
                    if xs.len() != 2 {
                        return Err("pair must have two elements".to_string());
                    }
                    Ok((pf(&xs[0])?, pf(&xs[1])?))
                })
                .collect()
        };
        let ids = |name: &str| -> Result<Vec<u32>, String> {
            obj_field(o, name)?
                .as_arr()
                .ok_or_else(|| format!("`{name}` is not an array"))?
                .iter()
                .map(|e| Ok(pu(e)? as u32))
                .collect()
        };
        let num = |name: &str| -> Result<u64, String> { pu(obj_field(o, name)?) };
        let flt = |name: &str| -> Result<f64, String> { pf(obj_field(o, name)?) };
        let flag = |name: &str| -> Result<bool, String> {
            match obj_field(o, name)? {
                Value::Bool(b) => Ok(*b),
                _ => Err(format!("`{name}` is not a boolean")),
            }
        };

        let ready_slots = obj_field(o, "rj")?
            .as_arr()
            .ok_or("`rj` is not an array")?
            .iter()
            .map(|e| {
                let xs = e.as_arr().ok_or("ready slot is not an array")?;
                if xs.len() != 5 {
                    return Err("ready slot must have five elements".to_string());
                }
                Ok((
                    pu(&xs[0])?,
                    PendingJob {
                        id: pu(&xs[1])? as u32,
                        release: pf(&xs[2])?,
                        work: pf(&xs[3])?,
                        remaining: pf(&xs[4])?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let nums = |name: &str| -> Result<Vec<u64>, String> {
            obj_field(o, name)?
                .as_arr()
                .ok_or_else(|| format!("`{name}` is not an array"))?
                .iter()
                .map(pu)
                .collect()
        };
        let flts = |name: &str| -> Result<Vec<f64>, String> {
            obj_field(o, name)?
                .as_arr()
                .ok_or_else(|| format!("`{name}` is not an array"))?
                .iter()
                .map(pf)
                .collect()
        };
        let energy_by_job = obj_field(o, "ej")?
            .as_arr()
            .ok_or("`ej` is not an array")?
            .iter()
            .map(|e| {
                let xs = e.as_arr().ok_or("energy entry is not an array")?;
                if xs.len() != 2 {
                    return Err("energy entry must have two elements".to_string());
                }
                Ok((pu(&xs[0])? as u32, pf(&xs[1])?))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let slices = obj_field(o, "sl")?
            .as_arr()
            .ok_or("`sl` is not an array")?
            .iter()
            .map(|e| {
                let xs = e.as_arr().ok_or("slice is not an array")?;
                if xs.len() != 4 {
                    return Err("slice must have four elements".to_string());
                }
                Ok(Slice::new(
                    pu(&xs[0])? as u32,
                    pf(&xs[1])?,
                    pf(&xs[2])?,
                    pf(&xs[3])?,
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let rep = obj_field(o, "rep")?
            .as_obj()
            .ok_or("`rep` is not an object")?;
        let rnum = |name: &str| -> Result<u64, String> { pu(obj_field(rep, name)?) };
        let rflt = |name: &str| -> Result<f64, String> { pf(obj_field(rep, name)?) };
        let report = ResilienceReport {
            crashes: rnum("cr")? as usize,
            downtime: rflt("dt")?,
            lost_work: rflt("lw")?,
            cancelled_jobs: rnum("cj")? as usize,
            cancelled_work: rflt("cw")?,
            wasted_energy: rflt("we")?,
            throttle_clamps: rnum("tc")? as usize,
            burst_jobs: rnum("bj")? as usize,
            shed_jobs: rnum("sj")? as usize,
            shed_work: rflt("sw")?,
            recovery_latencies: obj_field(rep, "rl")?
                .as_arr()
                .ok_or("`rl` is not an array")?
                .iter()
                .map(pf)
                .collect::<Result<Vec<_>, String>>()?,
            deadline_misses: match obj_field(rep, "dm")? {
                Value::Null => None,
                v => Some(pu(v)? as usize),
            },
        };
        Ok(Snapshot {
            next_arrival: num("na")?,
            finished: num("fin")?,
            i_fault: num("if")?,
            budget: num("bud")?,
            in_downtime: flag("dn")?,
            now: flt("now")?,
            energy: flt("en")?,
            down_until: flt("du")?,
            down_since: flt("ds")?,
            erased_this_down: flt("ed")?,
            pending_recoveries: pairs("pr")?,
            throttles: pairs("th")?,
            ready_slot_count: num("rc")?,
            ready_slots,
            ready_free: nums("fl")?,
            ready_queue: ids("rq")?,
            ready_backlog: flt("rb")?,
            ready_seen_work: flt("rs")?,
            ready_first_arrival: match obj_field(o, "rf")? {
                Value::Null => None,
                v => Some(pf(v)?),
            },
            band_origin: flt("bdo")?,
            band_width: flt("bdw")?,
            band_live: nums("bdl")?,
            band_remaining: flts("bdr")?,
            band_arrived: flts("bda")?,
            energy_by_job,
            cancelled_pre: ids("cp")?,
            cancelled_all: ids("ca")?,
            shed: ids("sh")?,
            slices,
            report,
            seq: num("seq")?,
            watchdog_trips: num("wt")?,
            breaker_open: flag("bo")?,
            policy_state: match obj_field(o, "ps")? {
                Value::Null => None,
                v => Some(
                    v.as_arr()
                        .ok_or("`ps` is not an array")?
                        .iter()
                        .map(pf)
                        .collect::<Result<Vec<_>, String>>()?,
                ),
            },
        })
    }
}

// ---------------------------------------------------------------------
// The journal itself.

enum Sink {
    /// In-memory buffer (benchmarks, tests); contents retrievable.
    Memory(String),
    /// Line-buffered file, flushed per record so a `SIGKILL` loses at
    /// most the torn tail.
    File(std::io::BufWriter<std::fs::File>),
}

/// An append-only record sink: the serving layer's write-ahead log.
pub struct Journal {
    sink: Sink,
    records: u64,
    path: Option<PathBuf>,
}

impl Journal {
    /// An in-memory journal (no durability; for tests and benchmarks).
    pub fn memory() -> Journal {
        Journal {
            sink: Sink::Memory(String::new()),
            records: 0,
            path: None,
        }
    }

    /// Create (truncate) a journal file for a fresh serving run.
    ///
    /// # Errors
    /// [`JournalError::Io`] if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let file = std::fs::File::create(path.as_ref()).map_err(io_err)?;
        Ok(Journal {
            sink: Sink::File(std::io::BufWriter::new(file)),
            records: 0,
            path: Some(path.as_ref().to_path_buf()),
        })
    }

    /// Open an existing journal file for appending (the restore path:
    /// replayed history stays, new decisions extend it).
    ///
    /// # Errors
    /// [`JournalError::Io`] if the file cannot be opened.
    pub fn append(path: impl AsRef<Path>) -> Result<Journal, JournalError> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path.as_ref())
            .map_err(io_err)?;
        Ok(Journal {
            sink: Sink::File(std::io::BufWriter::new(file)),
            records: 0,
            path: Some(path.as_ref().to_path_buf()),
        })
    }

    /// Records written through *this* handle (not pre-existing ones).
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// The file path, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The accumulated contents, when memory-backed.
    pub fn contents(&self) -> Option<&str> {
        match &self.sink {
            Sink::Memory(s) => Some(s),
            Sink::File(_) => None,
        }
    }

    fn write_line(&mut self, line: &str) -> Result<(), JournalError> {
        match &mut self.sink {
            Sink::Memory(s) => {
                s.push_str(line);
                s.push('\n');
            }
            Sink::File(w) => {
                w.write_all(line.as_bytes()).map_err(io_err)?;
                w.write_all(b"\n").map_err(io_err)?;
                // Flush per record: a kill can tear at most one line.
                w.flush().map_err(io_err)?;
            }
        }
        self.records += 1;
        Ok(())
    }

    pub(crate) fn write_header(
        &mut self,
        n: usize,
        events: usize,
        digest: u64,
    ) -> Result<(), JournalError> {
        self.write_line(&format!(
            "{{\"t\":\"hdr\",\"v\":{JOURNAL_VERSION},\"n\":{n},\"ev\":{events},\"dig\":\"{digest:016x}\"}}"
        ))
    }

    pub(crate) fn write_decision(&mut self, rec: &DecisionRecord) -> Result<(), JournalError> {
        let mut line = format!(
            "{{\"t\":\"dec\",\"s\":{},\"c\":{},\"w\":{}",
            rec.seq, rec.consulted, rec.tripped
        );
        match &rec.decision {
            Some(d) => {
                line.push_str(&format!(
                    ",\"j\":{},\"v\":\"{:016x}\"",
                    d.job,
                    d.speed.to_bits()
                ));
                if let Some(r) = d.recheck_after {
                    line.push_str(&format!(",\"r\":\"{:016x}\"", r.to_bits()));
                }
            }
            None => line.push_str(",\"j\":null"),
        }
        line.push('}');
        self.write_line(&line)
    }

    pub(crate) fn write_snapshot(&mut self, snap: &Snapshot) -> Result<(), JournalError> {
        let state = serde_json::to_string(&snap.to_value()).map_err(|e| JournalError::Io {
            message: e.to_string(),
        })?;
        self.write_line(&format!(
            "{{\"t\":\"snap\",\"s\":{},\"st\":{state}}}",
            snap.seq
        ))
    }
}

/// Parse a journal's records. A malformed or truncated *final* line is
/// a torn tail (normal after `SIGKILL`) and is silently dropped; a
/// malformed interior line is a hard error.
pub(crate) fn read_records(text: &str) -> Result<Vec<Record>, JournalError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok(rec) => out.push(rec),
            Err(message) => {
                if i + 1 == lines.len() {
                    break; // torn tail
                }
                return Err(JournalError::Malformed {
                    line: i + 1,
                    message,
                });
            }
        }
    }
    Ok(out)
}

fn parse_record(line: &str) -> Result<Record, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let o = v.as_obj().ok_or("record is not an object")?;
    let tag = match obj_field(o, "t")? {
        Value::Str(s) => s.clone(),
        _ => return Err("`t` is not a string".to_string()),
    };
    match tag.as_str() {
        "hdr" => {
            let digest = match obj_field(o, "dig")? {
                Value::Str(s) => {
                    u64::from_str_radix(s, 16).map_err(|_| format!("bad digest `{s}`"))?
                }
                _ => return Err("`dig` is not a string".to_string()),
            };
            Ok(Record::Header {
                version: pu(obj_field(o, "v")?)?,
                n: pu(obj_field(o, "n")?)?,
                events: pu(obj_field(o, "ev")?)?,
                digest,
            })
        }
        "dec" => {
            let decision = match obj_field(o, "j")? {
                Value::Null => None,
                j => Some(Decision {
                    job: pu(j)? as u32,
                    speed: pf(obj_field(o, "v")?)?,
                    recheck_after: match o.iter().find(|(k, _)| k == "r") {
                        Some((_, r)) => Some(pf(r)?),
                        None => None,
                    },
                }),
            };
            let flag = |name: &str| -> Result<bool, String> {
                match obj_field(o, name)? {
                    Value::Bool(b) => Ok(*b),
                    _ => Err(format!("`{name}` is not a boolean")),
                }
            };
            Ok(Record::Decision(DecisionRecord {
                seq: pu(obj_field(o, "s")?)?,
                decision,
                consulted: flag("c")?,
                tripped: flag("w")?,
            }))
        }
        "snap" => Ok(Record::Snapshot(Box::new(Snapshot::from_value(
            obj_field(o, "st")?,
        )?))),
        other => Err(format!("unknown record tag `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_bits_round_trip_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.5,
            1e9 + 1e-3,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let v = fb(x);
            assert_eq!(pf(&v).unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn decision_records_round_trip() {
        let recs = vec![
            DecisionRecord {
                seq: 1,
                decision: Some(Decision {
                    job: 7,
                    speed: 1.25,
                    recheck_after: Some(0.5),
                }),
                consulted: true,
                tripped: false,
            },
            DecisionRecord {
                seq: 2,
                decision: None,
                consulted: true,
                tripped: true,
            },
            DecisionRecord {
                seq: 3,
                decision: Some(Decision {
                    job: 0,
                    speed: 1e-9,
                    recheck_after: None,
                }),
                consulted: false,
                tripped: false,
            },
        ];
        let mut j = Journal::memory();
        j.write_header(10, 2, 0xdead_beef).unwrap();
        for r in &recs {
            j.write_decision(r).unwrap();
        }
        let parsed = read_records(j.contents().unwrap()).unwrap();
        assert_eq!(parsed.len(), 4);
        assert_eq!(
            parsed[0],
            Record::Header {
                version: JOURNAL_VERSION,
                n: 10,
                events: 2,
                digest: 0xdead_beef,
            }
        );
        for (rec, want) in parsed[1..].iter().zip(&recs) {
            assert_eq!(rec, &Record::Decision(want.clone()));
        }
    }

    #[test]
    fn torn_tail_is_dropped_interior_corruption_is_an_error() {
        let mut j = Journal::memory();
        j.write_header(1, 0, 1).unwrap();
        j.write_decision(&DecisionRecord {
            seq: 1,
            decision: None,
            consulted: true,
            tripped: false,
        })
        .unwrap();
        let good = j.contents().unwrap().to_string();
        // Torn tail: final line cut mid-record.
        let torn = format!("{good}{{\"t\":\"dec\",\"s\":2,");
        let recs = read_records(&torn).unwrap();
        assert_eq!(recs.len(), 2);
        // Interior corruption is not silently skipped.
        let corrupt = format!("not json\n{good}");
        assert!(matches!(
            read_records(&corrupt),
            Err(JournalError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn scenario_digest_separates_scenarios() {
        let a = vec![Job::new(0, 0.0, 1.0), Job::new(1, 1.0, 2.0)];
        let b = vec![Job::new(0, 0.0, 1.0), Job::new(1, 1.0, 2.5)];
        let plan = FaultPlan::none();
        assert_eq!(
            scenario_digest(&a, &plan, None),
            scenario_digest(&a, &plan, None)
        );
        assert_ne!(
            scenario_digest(&a, &plan, None),
            scenario_digest(&b, &plan, None)
        );
        let slo = FaultPlan::none().with_slo(2.0);
        assert_ne!(
            scenario_digest(&a, &plan, None),
            scenario_digest(&a, &slo, None)
        );
        let ac = AdmissionConfig {
            capacity: 8,
            shed: crate::online::ShedPolicy::RejectNewest,
        };
        assert_ne!(
            scenario_digest(&a, &plan, None),
            scenario_digest(&a, &plan, Some(&ac))
        );
    }
}
