//! Reference online engine over the retained AoS [`ReadySet`].
//!
//! Per the workspace convention, a displaced engine survives as a
//! `*_reference` entry point with an equivalence suite. The event loop
//! here is the *same generic code* as the production path — only the
//! storage engine differs: the arena
//! ([`ShardedReadySet`](crate::arena::ShardedReadySet), struct-of-arrays
//! slab with free-listed stable slots and batched ingestion) versus the
//! original dense `Vec<PendingJob>` with swap-remove compaction. What
//! the differential harness (`tests/online_equivalence.rs`) therefore
//! proves is that the two *storage layouts* are observationally
//! indistinguishable: identical policy decisions, identical slices,
//! identical energy bits, identical
//! [`outcome_digest`](crate::journal::outcome_digest)s — across event
//! streams, fault plans, admission gating, and crash/restore cuts.

use crate::faults::FaultPlan;
use crate::online::{
    materialize_arrivals, run_engine_in, AdmissionConfig, OnlineOutcome, OnlinePolicy, ReadySet,
    SimError,
};
use pas_workload::Instance;

/// [`run_online`](crate::online::run_online) on the retained
/// [`ReadySet`] reference storage.
///
/// # Errors
/// As [`run_online`](crate::online::run_online).
pub fn run_online_reference<M: pas_power::PowerModel>(
    instance: &Instance,
    model: &M,
    policy: &mut dyn OnlinePolicy,
) -> Result<OnlineOutcome, SimError> {
    run_online_with_faults_reference(instance, model, policy, &FaultPlan::none())
}

/// [`run_online_with_faults`](crate::online::run_online_with_faults) on
/// the retained [`ReadySet`] reference storage.
///
/// # Errors
/// As [`run_online`](crate::online::run_online).
pub fn run_online_with_faults_reference<M: pas_power::PowerModel>(
    instance: &Instance,
    model: &M,
    policy: &mut dyn OnlinePolicy,
    plan: &FaultPlan,
) -> Result<OnlineOutcome, SimError> {
    let (arrivals, burst_jobs) = materialize_arrivals(instance, plan);
    run_engine_in::<ReadySet, M>(&arrivals, model, policy, plan, burst_jobs, None)
}

/// [`run_online_gated`](crate::online::run_online_gated) on the
/// retained [`ReadySet`] reference storage.
///
/// # Errors
/// As [`run_online`](crate::online::run_online).
pub fn run_online_gated_reference<M: pas_power::PowerModel>(
    instance: &Instance,
    model: &M,
    policy: &mut dyn OnlinePolicy,
    plan: &FaultPlan,
    admission: AdmissionConfig,
) -> Result<OnlineOutcome, SimError> {
    let (arrivals, burst_jobs) = materialize_arrivals(instance, plan);
    run_engine_in::<ReadySet, M>(&arrivals, model, policy, plan, burst_jobs, Some(admission))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::outcome_digest;
    use crate::online::{run_online, Decision, ReadyView};
    use pas_power::PolyPower;

    struct FixedSpeed(f64);
    impl OnlinePolicy for FixedSpeed {
        fn decide(&mut self, _: f64, ready: &dyn ReadyView, _: f64) -> Option<Decision> {
            ready.first().map(|p| Decision {
                job: p.id,
                speed: self.0,
                recheck_after: None,
            })
        }
    }

    #[test]
    fn reference_matches_arena_on_the_paper_instance() {
        let inst = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
        let a = run_online(&inst, &PolyPower::CUBE, &mut FixedSpeed(2.0)).unwrap();
        let b = run_online_reference(&inst, &PolyPower::CUBE, &mut FixedSpeed(2.0)).unwrap();
        assert_eq!(outcome_digest(&a), outcome_digest(&b));
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
    }
}
