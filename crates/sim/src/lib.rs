//! # pas-sim
//!
//! Schedule representation, validation, metrics, and an online simulation
//! engine for speed-scaled processors.
//!
//! The optimization algorithms in `pas-core` *produce* schedules; this
//! crate is the neutral substrate that *checks* and *measures* them, so
//! algorithm bugs cannot hide behind their own accounting:
//!
//! * [`Schedule`] — per-processor sequences of constant-speed
//!   [`Slice`]s. Preemption and mid-job speed changes are representable
//!   (the YDS/AVR/OA deadline schedulers need them) even though the
//!   paper's makespan/flow optima never use them (Lemma 2).
//! * [`validate`](schedule::Schedule::validate) — structural legality:
//!   no overlap, release times respected, work completed exactly.
//! * [`metrics`] — makespan, total/max flow, energy under any
//!   [`PowerModel`](pas_power::PowerModel), speed-switch counts and
//!   §6-style switch-overhead inflation, and a Newtonian-cooling maximum
//!   temperature (the thermal objective of Bansal–Kimbrel–Pruhs from the
//!   related-work section).
//! * [`online`] — an event-driven engine that feeds arrivals to an
//!   [`online::OnlinePolicy`] and assembles its decisions
//!   into a `Schedule`, enabling the §6 "future work" online-vs-offline
//!   experiments under identical accounting. Job state lives in the
//!   data-oriented [`arena`] (struct-of-arrays slab sharded by deadline
//!   band); the original AoS path is retained in [`reference`](mod@reference) and held
//!   bit-identical by `tests/online_equivalence.rs`.
//! * [`faults`] — deterministic, seeded fault scenarios (crashes with
//!   lost or checkpointed progress, cancellations, throttle windows,
//!   arrival bursts) injected into the engine via
//!   [`online::run_online_with_faults`], costed by a
//!   [`faults::ResilienceReport`].

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod arena;
pub mod faults;
pub mod journal;
pub mod metrics;
pub mod online;
pub mod reference;
pub mod render;
pub mod schedule;
pub mod serve;
pub mod slice;

pub use arena::ShardedReadySet;
pub use faults::{
    BurstJob, CrashSemantics, FaultEvent, FaultKind, FaultModel, FaultNotice, FaultPlan,
    FaultPlanError, ResilienceReport,
};
pub use journal::{outcome_digest, Journal, JournalError};
pub use metrics::Metrics;
pub use online::{
    run_online, run_online_gated, run_online_pooled, run_online_with_faults, AdmissionConfig,
    Decision, EngineScratch, OnlineOutcome, OnlinePolicy, PendingJob, ReadySet, ReadyView,
    ShedPolicy, SimError,
};
pub use reference::{
    run_online_gated_reference, run_online_reference, run_online_with_faults_reference,
};
pub use render::render_ascii;
pub use schedule::{Schedule, ScheduleError};
pub use serve::{ServeConfig, ServeOutcome, ServeStats, Server, WatchdogConfig};
pub use slice::Slice;
