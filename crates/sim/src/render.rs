//! ASCII Gantt rendering of schedules.
//!
//! Debugging speed-scaled schedules from raw slice lists is painful;
//! this renderer draws one row per machine with per-slice job labels and
//! a shade proportional to the slice's speed, so block structure, idle
//! gaps and speed ramps are visible at a glance in test output and
//! example programs.
//!
//! ```text
//! m0 |000000000000001111112222|   0.0 → 6.4
//!     speeds: . <1.0  - <2.0  = <3.0  # >=3.0
//! ```

use crate::schedule::Schedule;
use std::fmt::Write as _;

/// Render `schedule` as an ASCII Gantt chart, `width` characters across
/// the time span `[0, horizon]`.
///
/// Each machine gets two rows: job ids (last digit) and a speed shade
/// (`.`, `-`, `=`, `#` for quartiles of the peak speed). Idle time is a
/// space. Returns the multi-line string.
///
/// # Panics
/// If `width == 0`.
pub fn render_ascii(schedule: &Schedule, width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let horizon = schedule.horizon();
    let mut out = String::new();
    if horizon <= 0.0 {
        let _ = writeln!(out, "(empty schedule)");
        return out;
    }
    let peak_speed = schedule
        .machines()
        .iter()
        .flat_map(|lane| lane.iter().map(|s| s.speed))
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let scale = width as f64 / horizon;

    for (m, lane) in schedule.machines().iter().enumerate() {
        let mut jobs_row = vec![' '; width];
        let mut speed_row = vec![' '; width];
        for s in lane {
            let from = ((s.start * scale) as usize).min(width - 1);
            let to = ((s.end * scale).ceil() as usize).clamp(from + 1, width);
            let label = char::from_digit(s.job % 10, 10).unwrap_or('?');
            let shade = match s.speed / peak_speed {
                x if x < 0.25 => '.',
                x if x < 0.5 => '-',
                x if x < 0.75 => '=',
                _ => '#',
            };
            for cell in &mut jobs_row[from..to] {
                *cell = label;
            }
            for cell in &mut speed_row[from..to] {
                *cell = shade;
            }
        }
        let _ = writeln!(
            out,
            "m{m} |{}| 0.0 → {horizon:.2}",
            jobs_row.iter().collect::<String>()
        );
        let _ = writeln!(out, "    |{}| speed", speed_row.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "    shades: . <25%  - <50%  = <75%  # of peak speed {peak_speed:.3}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::Slice;

    #[test]
    fn renders_paper_schedule() {
        let s3 = 8f64.sqrt();
        let sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 5.0, 1.0),
            Slice::new(1, 5.0, 6.0, 2.0),
            Slice::new(2, 6.0, 6.0 + 1.0 / s3, s3),
        ]);
        let art = render_ascii(&sched, 64);
        assert!(art.contains("m0 |"));
        assert!(art.contains('0'));
        assert!(art.contains('1'));
        assert!(art.contains('2'));
        // The last block is the fastest: a '#' shade must appear.
        assert!(art.contains('#'), "{art}");
        // The first block is below half the peak: '-' or '.'.
        assert!(art.contains('-') || art.contains('.'), "{art}");
    }

    #[test]
    fn idle_gaps_are_blank() {
        let sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 1.0, 1.0),
            Slice::new(1, 3.0, 4.0, 1.0),
        ]);
        let art = render_ascii(&sched, 40);
        let first_line = art.lines().next().unwrap();
        assert!(first_line.contains(' '), "{art}");
    }

    #[test]
    fn multi_machine_rows() {
        let mut sched = Schedule::with_machines(2);
        sched.push(0, Slice::new(0, 0.0, 2.0, 1.0));
        sched.push(1, Slice::new(1, 0.0, 1.0, 2.0));
        let art = render_ascii(&sched, 32);
        assert!(art.contains("m0 |"));
        assert!(art.contains("m1 |"));
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let sched = Schedule::single();
        assert!(render_ascii(&sched, 10).contains("empty"));
    }
}
