//! Multi-processor schedules and their structural validation.

use crate::slice::Slice;
use pas_workload::Instance;
use std::collections::HashMap;

/// Default tolerance for time/work comparisons during validation.
pub const DEFAULT_TOL: f64 = 1e-7;

/// Structural problems detected by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A slice is malformed (empty interval, non-positive speed, ...).
    InvalidSlice {
        /// Machine index.
        machine: usize,
        /// Slice index within the machine.
        index: usize,
    },
    /// Two slices on one machine overlap in time.
    Overlap {
        /// Machine index.
        machine: usize,
        /// Index of the second slice of the overlapping pair.
        index: usize,
    },
    /// A slice starts before its job's release time.
    ReleaseViolated {
        /// Job id.
        job: u32,
        /// Slice start.
        start: f64,
        /// Job release.
        release: f64,
    },
    /// A slice references a job id not present in the instance.
    UnknownJob {
        /// The unknown id.
        job: u32,
    },
    /// Total work executed for a job differs from its requirement.
    WorkMismatch {
        /// Job id.
        job: u32,
        /// Work the schedule performs.
        scheduled: f64,
        /// Work the instance requires.
        required: f64,
    },
    /// A job from the instance never appears in the schedule.
    MissingJob {
        /// Job id.
        job: u32,
    },
    /// A job runs on more than one machine (forbidden in the paper's
    /// non-migratory model).
    Migration {
        /// Job id.
        job: u32,
    },
    /// The schedule has no machines.
    NoMachines,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::InvalidSlice { machine, index } => {
                write!(f, "invalid slice {index} on machine {machine}")
            }
            ScheduleError::Overlap { machine, index } => {
                write!(f, "overlapping slices at {index} on machine {machine}")
            }
            ScheduleError::ReleaseViolated {
                job,
                start,
                release,
            } => write!(f, "job {job} starts at {start} before release {release}"),
            ScheduleError::UnknownJob { job } => write!(f, "unknown job id {job}"),
            ScheduleError::WorkMismatch {
                job,
                scheduled,
                required,
            } => write!(
                f,
                "job {job}: scheduled work {scheduled} != required {required}"
            ),
            ScheduleError::MissingJob { job } => write!(f, "job {job} never scheduled"),
            ScheduleError::Migration { job } => {
                write!(f, "job {job} migrates between machines")
            }
            ScheduleError::NoMachines => write!(f, "schedule has no machines"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A speed-scaled schedule over one or more processors.
///
/// Each machine holds a time-sorted sequence of [`Slice`]s; gaps between
/// slices are idle time (speed 0, power 0 under the paper's model).
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    machines: Vec<Vec<Slice>>,
}

impl Schedule {
    /// An empty single-processor schedule.
    pub fn single() -> Self {
        Schedule {
            machines: vec![Vec::new()],
        }
    }

    /// An empty schedule with `m` processors.
    ///
    /// # Panics
    /// If `m == 0`.
    pub fn with_machines(m: usize) -> Self {
        assert!(m > 0, "a schedule needs at least one machine");
        Schedule {
            machines: vec![Vec::new(); m],
        }
    }

    /// Build a single-processor schedule directly from slices (sorted by
    /// the caller or not — they are sorted here).
    pub fn from_slices(mut slices: Vec<Slice>) -> Self {
        slices.sort_by(|a, b| a.start.total_cmp(&b.start));
        Schedule {
            machines: vec![slices],
        }
    }

    /// Number of processors.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// The slices of machine `m`, sorted by start time.
    pub fn machine(&self, m: usize) -> &[Slice] {
        &self.machines[m]
    }

    /// All machines.
    pub fn machines(&self) -> &[Vec<Slice>] {
        &self.machines
    }

    /// Append a slice to machine `m`, keeping the machine sorted.
    ///
    /// # Panics
    /// If `m` is out of range.
    pub fn push(&mut self, m: usize, slice: Slice) {
        let lane = &mut self.machines[m];
        match lane.last() {
            Some(last) if last.start <= slice.start => lane.push(slice),
            None => lane.push(slice),
            _ => {
                lane.push(slice);
                lane.sort_by(|a, b| a.start.total_cmp(&b.start));
            }
        }
    }

    /// Merge adjacent slices of the same job at the same speed (within
    /// `tol` on both the junction time and the speed). Normalizing keeps
    /// switch counts meaningful.
    pub fn coalesce(&mut self, tol: f64) {
        for lane in &mut self.machines {
            let mut out: Vec<Slice> = Vec::with_capacity(lane.len());
            for s in lane.drain(..) {
                if let Some(last) = out.last_mut() {
                    if last.job == s.job
                        && (last.end - s.start).abs() <= tol
                        && (last.speed - s.speed).abs() <= tol * last.speed.abs().max(1.0)
                    {
                        last.end = s.end;
                        continue;
                    }
                }
                out.push(s);
            }
            *lane = out;
        }
    }

    /// Completion time of each job id (latest end over its slices).
    pub fn completion_times(&self) -> HashMap<u32, f64> {
        let mut out = HashMap::new();
        for lane in &self.machines {
            for s in lane {
                let e = out.entry(s.job).or_insert(f64::NEG_INFINITY);
                if s.end > *e {
                    *e = s.end;
                }
            }
        }
        out
    }

    /// Start time of each job id (earliest start over its slices).
    pub fn start_times(&self) -> HashMap<u32, f64> {
        let mut out = HashMap::new();
        for lane in &self.machines {
            for s in lane {
                let e = out.entry(s.job).or_insert(f64::INFINITY);
                if s.start < *e {
                    *e = s.start;
                }
            }
        }
        out
    }

    /// The single constant speed of each job, when Lemma-2-shaped; jobs
    /// run at several speeds map to `None`.
    pub fn job_speeds(&self, tol: f64) -> HashMap<u32, Option<f64>> {
        let mut out: HashMap<u32, Option<f64>> = HashMap::new();
        for lane in &self.machines {
            for s in lane {
                out.entry(s.job)
                    .and_modify(|v| {
                        if let Some(speed) = *v {
                            if (speed - s.speed).abs() > tol * speed.abs().max(1.0) {
                                *v = None;
                            }
                        }
                    })
                    .or_insert(Some(s.speed));
            }
        }
        out
    }

    /// Latest slice end over all machines (0 for an empty schedule).
    pub fn horizon(&self) -> f64 {
        self.machines
            .iter()
            .flat_map(|lane| lane.iter().map(|s| s.end))
            .fold(0.0, f64::max)
    }

    /// Full structural validation against `instance` (see
    /// [`ScheduleError`] variants for the rules). `tol` is an absolute
    /// time tolerance and a relative work tolerance.
    ///
    /// # Errors
    /// The first violation found.
    pub fn validate(&self, instance: &Instance, tol: f64) -> Result<(), ScheduleError> {
        if self.machines.is_empty() {
            return Err(ScheduleError::NoMachines);
        }
        let releases: HashMap<u32, f64> =
            instance.jobs().iter().map(|j| (j.id, j.release)).collect();
        let works: HashMap<u32, f64> = instance.jobs().iter().map(|j| (j.id, j.work)).collect();

        let mut done: HashMap<u32, f64> = HashMap::new();
        let mut home_machine: HashMap<u32, usize> = HashMap::new();

        for (m, lane) in self.machines.iter().enumerate() {
            for (k, s) in lane.iter().enumerate() {
                if !s.is_valid() {
                    return Err(ScheduleError::InvalidSlice {
                        machine: m,
                        index: k,
                    });
                }
                if k > 0 && s.start < lane[k - 1].end - tol {
                    return Err(ScheduleError::Overlap {
                        machine: m,
                        index: k,
                    });
                }
                let Some(&release) = releases.get(&s.job) else {
                    return Err(ScheduleError::UnknownJob { job: s.job });
                };
                if s.start < release - tol {
                    return Err(ScheduleError::ReleaseViolated {
                        job: s.job,
                        start: s.start,
                        release,
                    });
                }
                match home_machine.insert(s.job, m) {
                    Some(prev) if prev != m => return Err(ScheduleError::Migration { job: s.job }),
                    _ => {}
                }
                *done.entry(s.job).or_insert(0.0) += s.work();
            }
        }

        for (&job, &required) in &works {
            match done.get(&job) {
                None => return Err(ScheduleError::MissingJob { job }),
                Some(&scheduled) => {
                    if (scheduled - required).abs() > tol * required.abs().max(1.0) {
                        return Err(ScheduleError::WorkMismatch {
                            job,
                            scheduled,
                            required,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Validation plus the non-preemptive, single-speed shape of the
    /// paper's optima (Lemma 2): each job is exactly one slice.
    ///
    /// # Errors
    /// [`NonpreemptiveViolation::Structural`] wrapping any
    /// [`Schedule::validate`] failure, or
    /// [`NonpreemptiveViolation::MultiSlice`] when a job is split across
    /// several slices (preemption or a mid-job speed change).
    pub fn validate_nonpreemptive(
        &self,
        instance: &Instance,
        tol: f64,
    ) -> Result<(), NonpreemptiveViolation> {
        self.validate(instance, tol)
            .map_err(NonpreemptiveViolation::Structural)?;
        let mut seen: HashMap<u32, usize> = HashMap::new();
        for lane in &self.machines {
            for s in lane {
                *seen.entry(s.job).or_insert(0) += 1;
            }
        }
        for (job, count) in seen {
            if count != 1 {
                return Err(NonpreemptiveViolation::MultiSlice { job, count });
            }
        }
        Ok(())
    }
}

/// Violations of the stricter non-preemptive shape check.
#[derive(Debug, Clone, PartialEq)]
pub enum NonpreemptiveViolation {
    /// Plain structural invalidity.
    Structural(ScheduleError),
    /// A job occupies several slices (preemption or speed change).
    MultiSlice {
        /// Job id.
        job: u32,
        /// Number of slices found.
        count: usize,
    },
}

impl std::fmt::Display for NonpreemptiveViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonpreemptiveViolation::Structural(e) => write!(f, "{e}"),
            NonpreemptiveViolation::MultiSlice { job, count } => {
                write!(f, "job {job} split into {count} slices")
            }
        }
    }
}

impl std::error::Error for NonpreemptiveViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    /// The paper's Figure-1 instance at energy 21 (configuration
    /// {1},{2},{3}): speeds 1, 2, √8.
    fn paper_schedule() -> Schedule {
        let s3 = 8f64.sqrt();
        Schedule::from_slices(vec![
            Slice::new(0, 0.0, 5.0, 1.0),
            Slice::new(1, 5.0, 6.0, 2.0),
            Slice::new(2, 6.0, 6.0 + 1.0 / s3, s3),
        ])
    }

    #[test]
    fn valid_paper_schedule_passes() {
        let inst = paper_instance();
        let sched = paper_schedule();
        sched.validate(&inst, DEFAULT_TOL).unwrap();
        sched.validate_nonpreemptive(&inst, DEFAULT_TOL).unwrap();
    }

    #[test]
    fn detects_overlap() {
        let inst = paper_instance();
        let sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 5.0, 1.0),
            Slice::new(1, 4.0, 6.0, 1.0),
            Slice::new(2, 6.0, 7.0, 1.0),
        ]);
        assert!(matches!(
            sched.validate(&inst, DEFAULT_TOL),
            Err(ScheduleError::Overlap { .. })
        ));
    }

    #[test]
    fn detects_release_violation() {
        let inst = paper_instance();
        let sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 5.0, 1.0),
            Slice::new(1, 5.0, 6.0, 2.0),
            Slice::new(2, 5.5, 6.5, 1.0), // released at 6
        ]);
        // Note: also overlaps; reorder so release check fires first.
        let sched2 = Schedule::from_slices(vec![
            Slice::new(2, 0.0, 1.0, 1.0), // released at 6!
            Slice::new(0, 1.0, 6.0, 1.0),
            Slice::new(1, 6.0, 8.0, 1.0),
        ]);
        assert!(sched.validate(&inst, DEFAULT_TOL).is_err());
        assert!(matches!(
            sched2.validate(&inst, DEFAULT_TOL),
            Err(ScheduleError::ReleaseViolated { job: 2, .. })
        ));
    }

    #[test]
    fn detects_work_mismatch_and_missing() {
        let inst = paper_instance();
        let short = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 4.0, 1.0), // only 4 of 5 work
            Slice::new(1, 5.0, 6.0, 2.0),
            Slice::new(2, 6.0, 7.0, 1.0),
        ]);
        assert!(matches!(
            short.validate(&inst, DEFAULT_TOL),
            Err(ScheduleError::WorkMismatch { job: 0, .. })
        ));
        let missing = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 5.0, 1.0),
            Slice::new(1, 5.0, 6.0, 2.0),
        ]);
        assert!(matches!(
            missing.validate(&inst, DEFAULT_TOL),
            Err(ScheduleError::MissingJob { job: 2 })
        ));
    }

    #[test]
    fn detects_unknown_job_and_migration() {
        let inst = paper_instance();
        let unknown = Schedule::from_slices(vec![Slice::new(9, 0.0, 1.0, 1.0)]);
        assert!(matches!(
            unknown.validate(&inst, DEFAULT_TOL),
            Err(ScheduleError::UnknownJob { job: 9 })
        ));

        let mut migrating = Schedule::with_machines(2);
        migrating.push(0, Slice::new(0, 0.0, 2.5, 1.0));
        migrating.push(1, Slice::new(0, 2.5, 5.0, 1.0));
        migrating.push(0, Slice::new(1, 5.0, 6.0, 2.0));
        migrating.push(1, Slice::new(2, 6.0, 7.0, 1.0));
        assert!(matches!(
            migrating.validate(&inst, DEFAULT_TOL),
            Err(ScheduleError::Migration { job: 0 })
        ));
    }

    #[test]
    fn preemptive_passes_validate_but_not_nonpreemptive() {
        let inst = Instance::from_pairs(&[(0.0, 2.0)]).unwrap();
        let sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 1.0, 1.0),
            Slice::new(0, 2.0, 3.0, 1.0),
        ]);
        sched.validate(&inst, DEFAULT_TOL).unwrap();
        assert!(matches!(
            sched.validate_nonpreemptive(&inst, DEFAULT_TOL),
            Err(NonpreemptiveViolation::MultiSlice { job: 0, count: 2 })
        ));
    }

    #[test]
    fn coalesce_merges_same_speed_fragments() {
        let inst = Instance::from_pairs(&[(0.0, 2.0)]).unwrap();
        let mut sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 1.0, 1.0),
            Slice::new(0, 1.0, 2.0, 1.0),
        ]);
        sched.coalesce(1e-9);
        assert_eq!(sched.machine(0).len(), 1);
        sched.validate_nonpreemptive(&inst, DEFAULT_TOL).unwrap();
    }

    #[test]
    fn completion_and_start_times() {
        let sched = paper_schedule();
        let c = sched.completion_times();
        let s = sched.start_times();
        assert_eq!(s[&0], 0.0);
        assert_eq!(c[&1], 6.0);
        assert!((c[&2] - (6.0 + 1.0 / 8f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn job_speeds_lemma2_shape() {
        let sched = paper_schedule();
        let speeds = sched.job_speeds(1e-9);
        assert_eq!(speeds[&0], Some(1.0));
        assert_eq!(speeds[&1], Some(2.0));
        let two_speed = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 1.0, 1.0),
            Slice::new(0, 1.0, 2.0, 2.0),
        ]);
        assert_eq!(two_speed.job_speeds(1e-9)[&0], None);
    }

    #[test]
    fn push_keeps_lanes_sorted() {
        let mut sched = Schedule::single();
        sched.push(0, Slice::new(1, 5.0, 6.0, 1.0));
        sched.push(0, Slice::new(0, 0.0, 5.0, 1.0));
        assert_eq!(sched.machine(0)[0].job, 0);
        assert_eq!(sched.horizon(), 6.0);
    }
}
