//! Deterministic fault injection for the online engine.
//!
//! The ROADMAP's fleet-simulator and serving-engine goals both need
//! sustained operation through host failures, so the engine must be
//! drivable through adversity *reproducibly*: a [`FaultPlan`] is a
//! time-sorted list of [`FaultEvent`]s — machine crashes (with
//! lost-work or checkpointed semantics), job cancellations, transient
//! speed-cap throttling, and arrival bursts — that
//! [`run_online_with_faults`](crate::online::run_online_with_faults)
//! merges into its event loop. Plans are either hand-built or sampled
//! from a seeded [`FaultModel`] (Poisson per fault category, same
//! reproducibility convention as `pas_workload::generators`), so every
//! benchmark row and proptest failure is replayable.
//!
//! The engine reports what the faults cost through a
//! [`ResilienceReport`] attached to the outcome: lost and cancelled
//! work, downtime, wasted (overhead) energy, recovery latencies, and —
//! when the plan carries a flow SLO — deadline misses.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What happens to in-flight progress when the machine crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSemantics {
    /// All partial progress on unfinished jobs is erased: they restart
    /// from their full work after recovery (no stable storage).
    LoseProgress,
    /// Progress survives the crash (checkpointed to stable storage);
    /// the fault costs only downtime.
    Checkpointed,
}

/// One job injected by an [`FaultKind::ArrivalBurst`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstJob {
    /// Release offset from the burst's event time (`>= 0`).
    pub offset: f64,
    /// Work of the injected job (`> 0`).
    pub work: f64,
}

/// A fault category, applied at its event's time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The machine goes down for `duration` time units; no work runs
    /// and the policy is not consulted until recovery.
    Crash {
        /// Downtime length (`>= 0`).
        duration: f64,
        /// What happens to in-flight progress.
        semantics: CrashSemantics,
    },
    /// Cancel a job: it is removed from the ready set (or never
    /// admitted, if it has not arrived yet) and will not be delivered.
    /// Cancelling an unknown or already-completed job is a no-op.
    CancelJob {
        /// Target job id.
        job: u32,
    },
    /// Cap the execution speed at `cap` for `duration` time units
    /// (thermal or power-delivery throttling). Overlapping throttles
    /// compose by taking the minimum cap.
    Throttle {
        /// Throttle window length (`>= 0`).
        duration: f64,
        /// Maximum speed while active (`> 0`).
        cap: f64,
    },
    /// A batch of extra jobs released relative to the event time —
    /// the demand-spike fault.
    ArrivalBurst {
        /// The injected jobs (fresh ids are assigned by the engine).
        jobs: Vec<BurstJob>,
    },
}

/// A fault occurring at an absolute simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes (`>= 0`, finite).
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Rejected [`FaultPlan`] constructions.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// An event time is negative or non-finite.
    BadTime {
        /// The offending time.
        at: f64,
    },
    /// A crash or throttle duration is negative or non-finite.
    BadDuration {
        /// Event time.
        at: f64,
        /// The offending duration.
        duration: f64,
    },
    /// A throttle cap is non-positive or non-finite.
    BadCap {
        /// Event time.
        at: f64,
        /// The offending cap.
        cap: f64,
    },
    /// A burst job has a negative offset or non-positive work.
    BadBurst {
        /// Event time.
        at: f64,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::BadTime { at } => write!(f, "fault time {at} must be finite and >= 0"),
            FaultPlanError::BadDuration { at, duration } => {
                write!(
                    f,
                    "fault at t={at}: duration {duration} must be finite and >= 0"
                )
            }
            FaultPlanError::BadCap { at, cap } => {
                write!(f, "fault at t={at}: speed cap {cap} must be finite and > 0")
            }
            FaultPlanError::BadBurst { at } => {
                write!(
                    f,
                    "fault at t={at}: burst jobs need offset >= 0 and work > 0"
                )
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A validated, time-sorted fault scenario for one online run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    slo: Option<f64>,
}

impl FaultPlan {
    /// The empty plan: no faults, no SLO (what plain
    /// [`run_online`](crate::online::run_online) uses).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from events, validating and sorting them by time.
    ///
    /// # Errors
    /// [`FaultPlanError`] for non-finite/negative times or durations,
    /// non-positive caps, or malformed burst jobs.
    pub fn new(mut events: Vec<FaultEvent>) -> Result<Self, FaultPlanError> {
        for ev in &events {
            if !(ev.at.is_finite() && ev.at >= 0.0) {
                return Err(FaultPlanError::BadTime { at: ev.at });
            }
            match &ev.kind {
                FaultKind::Crash { duration, .. } => {
                    if !(duration.is_finite() && *duration >= 0.0) {
                        return Err(FaultPlanError::BadDuration {
                            at: ev.at,
                            duration: *duration,
                        });
                    }
                }
                FaultKind::Throttle { duration, cap } => {
                    if !(duration.is_finite() && *duration >= 0.0) {
                        return Err(FaultPlanError::BadDuration {
                            at: ev.at,
                            duration: *duration,
                        });
                    }
                    if !(cap.is_finite() && *cap > 0.0) {
                        return Err(FaultPlanError::BadCap {
                            at: ev.at,
                            cap: *cap,
                        });
                    }
                }
                FaultKind::ArrivalBurst { jobs } => {
                    let ok = jobs.iter().all(|b| {
                        b.offset.is_finite()
                            && b.offset >= 0.0
                            && b.work.is_finite()
                            && b.work > 0.0
                    });
                    if !ok {
                        return Err(FaultPlanError::BadBurst { at: ev.at });
                    }
                }
                FaultKind::CancelJob { .. } => {}
            }
        }
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        Ok(FaultPlan { events, slo: None })
    }

    /// Attach a per-job flow SLO (relative deadline): the engine then
    /// fills [`ResilienceReport::deadline_misses`] with the number of
    /// jobs whose flow `C_i − r_i` exceeds it (cancelled jobs count as
    /// misses).
    ///
    /// # Panics
    /// If `slo` is not positive and finite.
    #[must_use]
    pub fn with_slo(mut self, slo: f64) -> Self {
        assert!(slo.is_finite() && slo > 0.0, "SLO must be positive");
        self.slo = Some(slo);
        self
    }

    /// The attached flow SLO, if any.
    pub fn slo(&self) -> Option<f64> {
        self.slo
    }

    /// The validated events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the plan, returning its (time-sorted) event vector, so
    /// allocation-pooling callers can reclaim the buffer they fed to
    /// [`FaultPlan::new`] between back-to-back runs.
    pub fn into_events(self) -> Vec<FaultEvent> {
        self.events
    }
}

/// Configuration for the seeded fault-plan generator: independent
/// Poisson processes per fault category over a horizon (same inverse-CDF
/// idiom as `pas_workload::generators::poisson`, so plans are
/// reproducible from their seed alone).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Crashes per unit time.
    pub crash_rate: f64,
    /// Crash downtime range (uniform).
    pub crash_duration: (f64, f64),
    /// Probability a crash is [`CrashSemantics::Checkpointed`].
    pub checkpoint_prob: f64,
    /// Cancellations per unit time (targets drawn uniformly from the
    /// candidate job ids).
    pub cancel_rate: f64,
    /// Throttle windows per unit time.
    pub throttle_rate: f64,
    /// Throttle window length range (uniform).
    pub throttle_duration: (f64, f64),
    /// Speed-cap range (uniform).
    pub throttle_cap: (f64, f64),
    /// Arrival bursts per unit time.
    pub burst_rate: f64,
    /// Jobs per burst.
    pub burst_size: usize,
    /// Work range of burst jobs (uniform).
    pub burst_work: (f64, f64),
}

impl FaultModel {
    /// No faults at all (sampling yields the empty plan).
    pub fn calm() -> Self {
        FaultModel {
            crash_rate: 0.0,
            crash_duration: (0.5, 2.0),
            checkpoint_prob: 0.5,
            cancel_rate: 0.0,
            throttle_rate: 0.0,
            throttle_duration: (0.5, 2.0),
            throttle_cap: (0.3, 0.8),
            burst_rate: 0.0,
            burst_size: 3,
            burst_work: (0.5, 1.5),
        }
    }

    /// An even mix: each of the four categories at `rate / 4` events per
    /// unit time, with moderate default durations/caps/sizes — the knob
    /// the `fault_resilience` benchmark sweeps.
    ///
    /// # Panics
    /// If `rate` is negative or non-finite.
    pub fn uniform_mix(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0");
        FaultModel {
            crash_rate: rate / 4.0,
            cancel_rate: rate / 4.0,
            throttle_rate: rate / 4.0,
            burst_rate: rate / 4.0,
            ..FaultModel::calm()
        }
    }

    /// Cap the *expected number of events* over `horizon` at
    /// `target_events` by uniformly rescaling all four category rates.
    ///
    /// Rates are per-unit-time, so a model tuned for `horizon ≈ 30`
    /// silently explodes when sampled over a huge horizon (a crash rate
    /// of 0.25 over `1e9` time units is 250 million events — an OOM in
    /// [`sample`](FaultModel::sample), not a plan). Callers that sweep
    /// horizons — property tests in particular — should route rates
    /// through this budget instead of hand-capping each one. Models
    /// whose expectation is already within budget are unchanged.
    ///
    /// # Panics
    /// If `target_events` is negative/non-finite or `horizon` is
    /// negative/non-finite.
    #[must_use]
    pub fn with_event_budget(mut self, target_events: f64, horizon: f64) -> Self {
        assert!(
            target_events.is_finite() && target_events >= 0.0,
            "target_events must be >= 0"
        );
        assert!(
            horizon.is_finite() && horizon >= 0.0,
            "horizon must be >= 0"
        );
        let total_rate = self.crash_rate + self.cancel_rate + self.throttle_rate + self.burst_rate;
        let expected = total_rate * horizon;
        if expected > target_events && expected > 0.0 {
            let scale = target_events / expected;
            self.crash_rate *= scale;
            self.cancel_rate *= scale;
            self.throttle_rate *= scale;
            self.burst_rate *= scale;
        }
        self
    }

    /// Derive a per-host sampling seed from a fleet-level seed.
    ///
    /// Fleet scenarios sample one independent [`FaultPlan`] per host from
    /// a single scenario seed; the convention is
    /// `model.sample(horizon, jobs, FaultModel::for_host(seed, h))`.
    /// The mix is a splitmix64 finalizer over `seed ⊕ f(host_id)`, so
    /// host streams are decorrelated (adjacent seeds/hosts share no
    /// structure) yet fully reproducible: the same `(seed, host_id)`
    /// pair always yields the same plan, independent of how many hosts
    /// exist or in what order they are sampled — the replay-identity
    /// property `tests/fault_model.rs` pins.
    pub fn for_host(seed: u64, host_id: u32) -> u64 {
        // splitmix64 finalizer (Steele–Lea–Flood) over the combined key.
        let mut z = seed ^ (u64::from(host_id)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Sample a deterministic plan over `[0, horizon)`: each category is
    /// a Poisson process at its rate; cancellation targets are drawn
    /// from `candidate_jobs` (no cancels are generated when it is
    /// empty).
    ///
    /// # Panics
    /// If `horizon` is negative or non-finite, or any configured range
    /// is invalid (empty or non-positive where positivity is required).
    pub fn sample(&self, horizon: f64, candidate_jobs: &[u32], seed: u64) -> FaultPlan {
        assert!(
            horizon.is_finite() && horizon >= 0.0,
            "horizon must be >= 0"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let u01 = Uniform::new(f64::MIN_POSITIVE, 1.0);
        let mut events = Vec::new();

        // Poisson arrival times for one category via inverse-CDF
        // exponential gaps.
        let times = |rate: f64, rng: &mut StdRng| -> Vec<f64> {
            let mut out = Vec::new();
            if rate <= 0.0 {
                return out;
            }
            let mut t = 0.0;
            loop {
                t += -u01.sample(rng).ln() / rate;
                if t >= horizon {
                    return out;
                }
                out.push(t);
            }
        };

        for at in times(self.crash_rate, &mut rng) {
            let dur = Uniform::new_inclusive(self.crash_duration.0, self.crash_duration.1)
                .sample(&mut rng);
            let semantics = if u01.sample(&mut rng) < self.checkpoint_prob {
                CrashSemantics::Checkpointed
            } else {
                CrashSemantics::LoseProgress
            };
            events.push(FaultEvent {
                at,
                kind: FaultKind::Crash {
                    duration: dur.max(0.0),
                    semantics,
                },
            });
        }
        if !candidate_jobs.is_empty() {
            for at in times(self.cancel_rate, &mut rng) {
                let idx = Uniform::new_inclusive(0usize, candidate_jobs.len() - 1).sample(&mut rng);
                events.push(FaultEvent {
                    at,
                    kind: FaultKind::CancelJob {
                        job: candidate_jobs[idx],
                    },
                });
            }
        }
        for at in times(self.throttle_rate, &mut rng) {
            let dur = Uniform::new_inclusive(self.throttle_duration.0, self.throttle_duration.1)
                .sample(&mut rng);
            let cap =
                Uniform::new_inclusive(self.throttle_cap.0, self.throttle_cap.1).sample(&mut rng);
            events.push(FaultEvent {
                at,
                kind: FaultKind::Throttle {
                    duration: dur.max(0.0),
                    cap: cap.max(f64::MIN_POSITIVE),
                },
            });
        }
        for at in times(self.burst_rate, &mut rng) {
            let wrk = Uniform::new_inclusive(self.burst_work.0, self.burst_work.1);
            let off = Uniform::new_inclusive(0.0, 0.5);
            let jobs = (0..self.burst_size)
                .map(|_| BurstJob {
                    offset: off.sample(&mut rng),
                    work: wrk.sample(&mut rng).max(f64::MIN_POSITIVE),
                })
                .collect();
            events.push(FaultEvent {
                at,
                kind: FaultKind::ArrivalBurst { jobs },
            });
        }
        FaultPlan::new(events).expect("sampled events are valid by construction")
    }
}

/// What the engine tells the policy when the world changes for reasons
/// other than arrivals/completions. Policies may ignore these (the
/// default [`notify`](crate::online::OnlinePolicy::notify) is a no-op)
/// or use them to re-plan.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultNotice {
    /// The machine just went down.
    Crashed {
        /// Crash time.
        at: f64,
        /// Progress semantics of this crash.
        semantics: CrashSemantics,
    },
    /// The machine is back up.
    Recovered {
        /// Recovery time.
        at: f64,
        /// Length of the down period that just ended.
        downtime: f64,
        /// Progress erased during that period (0 for checkpointed
        /// crashes).
        lost_work: f64,
    },
    /// A job was cancelled.
    JobCancelled {
        /// Cancellation time.
        at: f64,
        /// The cancelled job.
        job: u32,
    },
    /// A speed cap is now active.
    Throttled {
        /// Start of the throttle window.
        at: f64,
        /// End of the throttle window.
        until: f64,
        /// The cap.
        cap: f64,
    },
    /// A speed cap expired (no other cap may still be active).
    ThrottleLifted {
        /// Expiry time.
        at: f64,
    },
}

/// What a fault scenario cost: the resilience accounting attached to
/// every [`OnlineOutcome`](crate::online::OnlineOutcome).
///
/// All quantities are zero for a fault-free run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceReport {
    /// Number of crash events applied.
    pub crashes: usize,
    /// Total time the machine was down.
    pub downtime: f64,
    /// Work progress erased by lose-progress crashes plus partial
    /// progress discarded by cancellations.
    pub lost_work: f64,
    /// Number of jobs cancelled (delivered nothing).
    pub cancelled_jobs: usize,
    /// Total nominal work of cancelled jobs.
    pub cancelled_work: f64,
    /// Energy metered on progress that was later erased or cancelled —
    /// the energy overhead of the fault scenario.
    pub wasted_energy: f64,
    /// Number of decisions whose speed was clamped by an active
    /// throttle cap.
    pub throttle_clamps: usize,
    /// Number of jobs injected by arrival bursts.
    pub burst_jobs: usize,
    /// Jobs rejected or evicted by the serving layer's admission
    /// control ([`crate::serve`]); always zero for the one-shot entry
    /// points, which admit everything.
    pub shed_jobs: usize,
    /// Total nominal work of shed jobs.
    pub shed_work: f64,
    /// Per down-period latency from crash start to the first work
    /// executed after recovery (downtime + re-planning delay).
    pub recovery_latencies: Vec<f64>,
    /// Jobs whose flow exceeded the plan's SLO (cancelled jobs count as
    /// misses); `None` when the plan carried no SLO.
    pub deadline_misses: Option<usize>,
}

impl ResilienceReport {
    /// Largest recovery latency (0 when no crash occurred).
    pub fn max_recovery_latency(&self) -> f64 {
        self.recovery_latencies.iter().fold(0.0, |m, &l| m.max(l))
    }

    /// Whether the run saw no fault or overload effects at all.
    pub fn is_clean(&self) -> bool {
        self.crashes == 0
            && self.cancelled_jobs == 0
            && self.throttle_clamps == 0
            && self.burst_jobs == 0
            && self.shed_jobs == 0
            && self.lost_work == 0.0
            && self.downtime == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_budget_caps_huge_horizons() {
        // Regression: uniform_mix(1.0) over a 1e9 horizon expects a
        // billion events — sampling that would OOM. The budget rescales
        // rates so the plan stays small (Poisson tail: well under 2×
        // the target) and sampling stays fast.
        let horizon = 1e9;
        let model = FaultModel::uniform_mix(1.0).with_event_budget(32.0, horizon);
        let total = model.crash_rate + model.cancel_rate + model.throttle_rate + model.burst_rate;
        assert!((total * horizon - 32.0).abs() < 1e-6, "expected {total}");
        let plan = model.sample(horizon, &[1, 2, 3], 7);
        assert!(
            plan.events().len() < 64,
            "plan has {} events",
            plan.events().len()
        );
    }

    #[test]
    fn event_budget_leaves_small_models_alone() {
        let model = FaultModel::uniform_mix(0.2);
        let capped = model.clone().with_event_budget(100.0, 30.0);
        assert_eq!(model, capped);
        // Zero-rate models are a no-op even at absurd horizons.
        let calm = FaultModel::calm().with_event_budget(1.0, 1e12);
        assert_eq!(calm, FaultModel::calm());
    }

    #[test]
    fn plan_sorts_and_validates() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 5.0,
                kind: FaultKind::CancelJob { job: 1 },
            },
            FaultEvent {
                at: 1.0,
                kind: FaultKind::Crash {
                    duration: 2.0,
                    semantics: CrashSemantics::LoseProgress,
                },
            },
        ])
        .unwrap();
        assert_eq!(plan.len(), 2);
        assert!(plan.events()[0].at <= plan.events()[1].at);
    }

    #[test]
    fn plan_rejects_bad_events() {
        let bad_time = FaultPlan::new(vec![FaultEvent {
            at: -1.0,
            kind: FaultKind::CancelJob { job: 0 },
        }]);
        assert!(matches!(bad_time, Err(FaultPlanError::BadTime { .. })));
        let bad_cap = FaultPlan::new(vec![FaultEvent {
            at: 0.0,
            kind: FaultKind::Throttle {
                duration: 1.0,
                cap: 0.0,
            },
        }]);
        assert!(matches!(bad_cap, Err(FaultPlanError::BadCap { .. })));
        let bad_burst = FaultPlan::new(vec![FaultEvent {
            at: 0.0,
            kind: FaultKind::ArrivalBurst {
                jobs: vec![BurstJob {
                    offset: -0.1,
                    work: 1.0,
                }],
            },
        }]);
        assert!(matches!(bad_burst, Err(FaultPlanError::BadBurst { .. })));
    }

    #[test]
    fn sampling_is_deterministic() {
        let model = FaultModel::uniform_mix(0.5);
        let a = model.sample(40.0, &[0, 1, 2], 7);
        let b = model.sample(40.0, &[0, 1, 2], 7);
        let c = model.sample(40.0, &[0, 1, 2], 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for ev in a.events() {
            assert!(ev.at >= 0.0 && ev.at < 40.0);
        }
    }

    #[test]
    fn calm_model_samples_empty() {
        let plan = FaultModel::calm().sample(100.0, &[0], 1);
        assert!(plan.is_empty());
    }

    #[test]
    fn report_aggregates() {
        let mut r = ResilienceReport::default();
        assert!(r.is_clean());
        assert_eq!(r.max_recovery_latency(), 0.0);
        r.recovery_latencies = vec![1.0, 3.5, 2.0];
        r.crashes = 3;
        assert!(!r.is_clean());
        assert_eq!(r.max_recovery_latency(), 3.5);
    }
}
