//! Schedule quality and cost metrics.
//!
//! The two classic metrics of the paper — **makespan** (`max_i C_i`) and
//! **total flow** (`Σ_i (C_i − r_i)`) — plus energy under an arbitrary
//! [`PowerModel`], weighted flow (the paper's example of a *non-symmetric*
//! metric, §5), speed-switch accounting for the §6 overhead discussion,
//! and a Newtonian-cooling maximum temperature (the objective of
//! Bansal–Kimbrel–Pruhs discussed in §2).

use crate::schedule::Schedule;
use pas_numeric::NeumaierSum;
use pas_power::PowerModel;
use pas_workload::Instance;
use std::collections::HashMap;

/// Convenience bundle of the headline metrics of one schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// `max_i C_i`.
    pub makespan: f64,
    /// `Σ_i (C_i − r_i)`.
    pub total_flow: f64,
    /// Total energy under the model the bundle was computed with.
    pub energy: f64,
    /// Number of speed switches (see [`switch_count`]).
    pub switches: usize,
}

/// Compute the headline bundle in one pass.
pub fn metrics<M: PowerModel>(schedule: &Schedule, instance: &Instance, model: &M) -> Metrics {
    Metrics {
        makespan: makespan(schedule),
        total_flow: total_flow(schedule, instance),
        energy: energy(schedule, model),
        switches: switch_count(schedule, 1e-9),
    }
}

/// Makespan: completion time of the last job (= latest slice end).
pub fn makespan(schedule: &Schedule) -> f64 {
    schedule.horizon()
}

/// Total flow: `Σ_i (C_i − r_i)` over all jobs present in the schedule.
///
/// Jobs missing from the schedule contribute nothing — run
/// [`Schedule::validate`] first if completeness matters.
pub fn total_flow(schedule: &Schedule, instance: &Instance) -> f64 {
    let completions = schedule.completion_times();
    let mut acc = NeumaierSum::new();
    for job in instance.jobs() {
        if let Some(&c) = completions.get(&job.id) {
            acc.add(c - job.release);
        }
    }
    acc.total()
}

/// Weighted total flow `Σ_i w_i (C_i − r_i)` — the paper's §5 example of
/// a metric that is *not* symmetric, so Theorem 10's cyclic assignment
/// does not apply to it. `weights` maps job id to weight (default 1).
pub fn weighted_flow(schedule: &Schedule, instance: &Instance, weights: &HashMap<u32, f64>) -> f64 {
    let completions = schedule.completion_times();
    let mut acc = NeumaierSum::new();
    for job in instance.jobs() {
        if let Some(&c) = completions.get(&job.id) {
            let w = weights.get(&job.id).copied().unwrap_or(1.0);
            acc.add(w * (c - job.release));
        }
    }
    acc.total()
}

/// Maximum flow `max_i (C_i − r_i)` (a symmetric non-decreasing metric,
/// so Theorem 10 *does* apply to it — used by tests of that theorem).
pub fn max_flow(schedule: &Schedule, instance: &Instance) -> f64 {
    let completions = schedule.completion_times();
    instance
        .jobs()
        .iter()
        .filter_map(|j| completions.get(&j.id).map(|c| c - j.release))
        .fold(0.0, f64::max)
}

/// Total energy: `Σ_slices P(speed)·duration` under `model`, with
/// compensated accumulation.
pub fn energy<M: PowerModel>(schedule: &Schedule, model: &M) -> f64 {
    let mut acc = NeumaierSum::new();
    for lane in schedule.machines() {
        for s in lane {
            acc.add(model.power(s.speed) * s.duration());
        }
    }
    acc.total()
}

/// Count speed switches: transitions between *adjacent operating speeds*
/// on each machine, where consecutive slices differ in speed by more than
/// `tol` (relative). Idle gaps count as a switch only if the speeds on
/// both sides differ — the voltage need not change to pause.
pub fn switch_count(schedule: &Schedule, tol: f64) -> usize {
    let mut count = 0;
    for lane in schedule.machines() {
        for pair in lane.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if (a.speed - b.speed).abs() > tol * a.speed.abs().max(1.0) {
                count += 1;
            }
        }
    }
    count
}

/// Makespan inflated by a per-switch stall of `delta` time units — the §6
/// model where "the processor must stop while the voltage is changing".
/// Each machine's finish time grows by `delta ×` (its own switch count);
/// the result is the worst machine.
pub fn makespan_with_switch_overhead(schedule: &Schedule, delta: f64, tol: f64) -> f64 {
    let mut worst = 0.0f64;
    for lane in schedule.machines() {
        let finish = lane.last().map_or(0.0, |s| s.end);
        let switches = lane
            .windows(2)
            .filter(|p| (p[0].speed - p[1].speed).abs() > tol * p[0].speed.abs().max(1.0))
            .count();
        worst = worst.max(finish + delta * switches as f64);
    }
    worst
}

/// Maximum temperature over the schedule under Newton's law of cooling:
/// `T'(t) = a·P(t) − b·T(t)`, `T(0) = 0`.
///
/// Within a constant-power interval the closed form is
/// `T(t₀+Δ) = aP/b + (T(t₀) − aP/b)·e^{−bΔ}`, monotone toward the
/// asymptote `aP/b`, so the per-interval maximum is attained at an
/// endpoint. Idle gaps decay with `P = 0`. This is the thermal model of
/// Bansal–Kimbrel–Pruhs referenced in the paper's related work.
///
/// # Panics
/// If `b <= 0` (cooling must be strictly dissipative).
pub fn max_temperature<M: PowerModel>(schedule: &Schedule, model: &M, a: f64, b: f64) -> f64 {
    assert!(b > 0.0, "cooling rate b must be positive");
    let mut peak = 0.0f64;
    for lane in schedule.machines() {
        let mut t_now = 0.0; // temperature
        let mut clock = 0.0; // time
        for s in lane {
            // Idle gap before the slice: exponential decay.
            if s.start > clock {
                t_now *= (-b * (s.start - clock)).exp();
            }
            let asymptote = a * model.power(s.speed) / b;
            t_now = asymptote + (t_now - asymptote) * (-b * s.duration()).exp();
            clock = s.end;
            peak = peak.max(t_now);
        }
    }
    peak
}

/// Number of jobs whose flow `C_i − r_i` exceeds the `slo` bound.
///
/// Jobs of the instance that never complete in the schedule (lost to a
/// crash or cancellation) count as misses — an undelivered job can never
/// meet its deadline. This is the shared implementation behind
/// [`ResilienceReport::deadline_misses`](crate::faults::ResilienceReport).
pub fn deadline_misses(schedule: &Schedule, instance: &Instance, slo: f64) -> usize {
    let completions = schedule.completion_times();
    instance
        .jobs()
        .iter()
        .filter(|j| match completions.get(&j.id) {
            Some(&c) => c - j.release > slo,
            None => true,
        })
        .count()
}

/// Work actually executed per job: `Σ_slices speed·duration`, keyed by
/// job id, with compensated accumulation per job.
///
/// Under fault injection this is how the *effective* instance is
/// reconstructed (re-executed work after a lost-progress crash shows up
/// here, cancelled-before-start jobs do not), so the engine and the
/// metrics share one notion of "work done".
pub fn executed_work_by_job(schedule: &Schedule) -> HashMap<u32, f64> {
    let mut acc: HashMap<u32, NeumaierSum> = HashMap::new();
    for lane in schedule.machines() {
        for s in lane {
            acc.entry(s.job).or_default().add(s.work());
        }
    }
    acc.into_iter().map(|(id, sum)| (id, sum.total())).collect()
}

/// Work executed inside the half-open interval `[from, to)`, across all
/// machines, clipping slices that straddle the boundary.
///
/// The per-interval counterpart of [`executed_work_by_job`]: binning a
/// horizon with it yields a lost/delivered-work timeline (e.g. work
/// burned between a crash and its recovery under lost-progress
/// semantics).
pub fn work_in_interval(schedule: &Schedule, from: f64, to: f64) -> f64 {
    let mut acc = NeumaierSum::new();
    for lane in schedule.machines() {
        for s in lane {
            let lo = s.start.max(from);
            let hi = s.end.min(to);
            if hi > lo {
                acc.add(s.speed * (hi - lo));
            }
        }
    }
    acc.total()
}

/// Per-job flow values `(job id, C_i − r_i)`, sorted by id — the raw
/// series behind flow plots.
pub fn per_job_flow(schedule: &Schedule, instance: &Instance) -> Vec<(u32, f64)> {
    let completions = schedule.completion_times();
    let mut out: Vec<(u32, f64)> = instance
        .jobs()
        .iter()
        .filter_map(|j| completions.get(&j.id).map(|c| (j.id, c - j.release)))
        .collect();
    out.sort_by_key(|&(id, _)| id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::Slice;
    use pas_power::PolyPower;

    fn paper_setup() -> (Instance, Schedule) {
        // Figure-1 instance at E = 21: speeds 1, 2, √8.
        let inst = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
        let s3 = 8f64.sqrt();
        let sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 5.0, 1.0),
            Slice::new(1, 5.0, 6.0, 2.0),
            Slice::new(2, 6.0, 6.0 + 1.0 / s3, s3),
        ]);
        (inst, sched)
    }

    #[test]
    fn energy_matches_paper_arithmetic() {
        let (_, sched) = paper_setup();
        // 5·1² + 2·2² + 1·(√8)² = 5 + 8 + 8 = 21.
        let e = energy(&sched, &PolyPower::CUBE);
        assert!((e - 21.0).abs() < 1e-9, "energy {e}");
    }

    #[test]
    fn makespan_matches_closed_form() {
        let (_, sched) = paper_setup();
        // M(21) = 6 + (21-13)^(-1/2).
        let want = 6.0 + 1.0 / 8f64.sqrt();
        assert!((makespan(&sched) - want).abs() < 1e-12);
    }

    #[test]
    fn flow_accounting() {
        let (inst, sched) = paper_setup();
        // Flows: J0: 5-0, J1: 6-5, J2: 6+1/√8-6.
        let want = 5.0 + 1.0 + 1.0 / 8f64.sqrt();
        assert!((total_flow(&sched, &inst) - want).abs() < 1e-12);
        assert!((max_flow(&sched, &inst) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_flow_defaults_to_unit_weights() {
        let (inst, sched) = paper_setup();
        let unweighted = total_flow(&sched, &inst);
        assert_eq!(weighted_flow(&sched, &inst, &HashMap::new()), unweighted);
        let mut weights = HashMap::new();
        weights.insert(0u32, 2.0);
        let wf = weighted_flow(&sched, &inst, &weights);
        assert!((wf - (unweighted + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn switch_counting() {
        let (_, sched) = paper_setup();
        assert_eq!(switch_count(&sched, 1e-9), 2); // 1→2→√8
        let constant = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 1.0, 2.0),
            Slice::new(1, 1.0, 2.0, 2.0),
        ]);
        assert_eq!(switch_count(&constant, 1e-9), 0);
    }

    #[test]
    fn switch_overhead_inflates_makespan() {
        let (_, sched) = paper_setup();
        let m0 = makespan(&sched);
        let m = makespan_with_switch_overhead(&sched, 0.1, 1e-9);
        assert!((m - (m0 + 0.2)).abs() < 1e-12);
        assert_eq!(makespan_with_switch_overhead(&sched, 0.0, 1e-9), m0);
    }

    #[test]
    fn temperature_peaks_at_hot_slice() {
        let model = PolyPower::CUBE;
        // Slow then fast: peak after the fast slice.
        let sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 10.0, 1.0),
            Slice::new(1, 10.0, 11.0, 3.0),
        ]);
        let peak = max_temperature(&sched, &model, 1.0, 1.0);
        // Asymptote during slice 1 is P=1; during slice 2 is P=27.
        assert!(peak > 1.0 && peak < 27.0, "peak {peak}");

        // With fast cooling, long exposure at P=1 nearly reaches 1.
        let slow_only = Schedule::from_slices(vec![Slice::new(0, 0.0, 50.0, 1.0)]);
        let p2 = max_temperature(&slow_only, &model, 1.0, 2.0);
        assert!((p2 - 0.5).abs() < 1e-6, "p2 {p2}"); // aP/b = 0.5
    }

    #[test]
    fn temperature_decays_over_idle_gap() {
        let model = PolyPower::CUBE;
        let gap = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 10.0, 2.0),
            Slice::new(1, 100.0, 100.1, 2.0),
        ]);
        let no_gap = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 10.0, 2.0),
            Slice::new(1, 10.0, 10.1, 2.0),
        ]);
        // Back-to-back slices keep heating (peak after the second slice);
        // with a long cool-down the peak is the end of the first slice.
        let p_gap = max_temperature(&gap, &model, 1.0, 0.5);
        let p_no = max_temperature(&no_gap, &model, 1.0, 0.5);
        assert!(p_gap < p_no, "gap {p_gap} vs no-gap {p_no}");
        // Closed form for the shared first slice: 16·(1 − e^{−5}).
        let after_first = 16.0 * (1.0 - (-5.0f64).exp());
        assert!((p_gap - after_first).abs() < 1e-9, "p_gap {p_gap}");
    }

    #[test]
    fn bundle_is_consistent() {
        let (inst, sched) = paper_setup();
        let m = metrics(&sched, &inst, &PolyPower::CUBE);
        assert_eq!(m.makespan, makespan(&sched));
        assert_eq!(m.total_flow, total_flow(&sched, &inst));
        assert_eq!(m.energy, energy(&sched, &PolyPower::CUBE));
        assert_eq!(m.switches, 2);
    }

    #[test]
    fn deadline_misses_count_late_and_missing_jobs() {
        let (inst, sched) = paper_setup();
        // Flows: 5, 1, 1/√8. A 2-unit SLO is missed only by job 0.
        assert_eq!(deadline_misses(&sched, &inst, 2.0), 1);
        assert_eq!(deadline_misses(&sched, &inst, 10.0), 0);
        // Drop job 2's slices: it becomes an automatic miss.
        let partial = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 5.0, 1.0),
            Slice::new(1, 5.0, 6.0, 2.0),
        ]);
        assert_eq!(deadline_misses(&partial, &inst, 10.0), 1);
    }

    #[test]
    fn executed_work_sums_per_job_across_slices() {
        let sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 1.0, 2.0),
            Slice::new(1, 1.0, 2.0, 1.0),
            Slice::new(0, 2.0, 3.0, 0.5),
        ]);
        let w = executed_work_by_job(&sched);
        assert!((w[&0] - 2.5).abs() < 1e-12);
        assert!((w[&1] - 1.0).abs() < 1e-12);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn interval_work_clips_straddling_slices() {
        let sched = Schedule::from_slices(vec![
            Slice::new(0, 0.0, 2.0, 1.0),
            Slice::new(1, 3.0, 5.0, 2.0),
        ]);
        // [1, 4): 1 unit of job 0 plus 2 units of job 1.
        assert!((work_in_interval(&sched, 1.0, 4.0) - 3.0).abs() < 1e-12);
        // Degenerate and empty windows.
        assert_eq!(work_in_interval(&sched, 4.0, 4.0), 0.0);
        assert_eq!(work_in_interval(&sched, 10.0, 20.0), 0.0);
        // Whole horizon = total work.
        assert!((work_in_interval(&sched, 0.0, 5.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn per_job_flow_series() {
        let (inst, sched) = paper_setup();
        let series = per_job_flow(&sched, &inst);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].0, 0);
        assert!((series[0].1 - 5.0).abs() < 1e-12);
    }
}
