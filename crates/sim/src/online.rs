//! Event-driven online execution engine.
//!
//! The paper's §6 names online power-aware scheduling (where the
//! algorithm learns about each job only at its release) as the most
//! important open direction. This engine provides the experimental
//! harness: it reveals arrivals to an [`OnlinePolicy`] one release time
//! at a time, executes the policy's speed decisions, and assembles the
//! result into a [`Schedule`] that goes through exactly the same
//! validation and metrics as the offline optima — so empirical
//! competitive ratios are apples-to-apples.
//!
//! The engine is single-processor (matching the §6 open problem). It
//! re-consults the policy at every *event*: a job arrival, a job
//! completion, a policy-requested checkpoint — or, under a
//! [`FaultPlan`], a fault (crash/recovery, cancellation, throttle
//! window, arrival burst). [`run_online`] is the fault-free entry
//! point; [`run_online_with_faults`] injects a deterministic fault
//! scenario and reports its cost through the outcome's
//! [`ResilienceReport`].
//!
//! # Scale
//!
//! Policies see the ready jobs through the [`ReadyView`] trait, which
//! exposes the running aggregates every natural policy needs — backlog,
//! total work seen, first arrival, per-deadline-band shard sums —
//! maintained **incrementally**, with job ids resolved in `O(1)`. A
//! policy whose `decide` uses only those aggregates (all of the §6
//! policies in `pas-core::online` do) costs `O(1)` per event, so a
//! full run is `O(n)` hash-map operations plus slice assembly — E13
//! runs at `n` in the tens of thousands.
//!
//! Two interchangeable storage engines implement the view: the
//! data-oriented [`ShardedReadySet`]
//! arena (struct-of-arrays slab, stable free-listed slots, batched
//! arrival ingestion — the default), and the original AoS [`ReadySet`]
//! retained as the reference path (driven by
//! [`crate::reference::run_online_reference`]). The event loop is
//! generic over the `ReadyStore` engine trait, so both paths execute
//! the identical floating-point operation sequence and produce
//! bit-identical outcomes — a contract `tests/online_equivalence.rs`
//! enforces across proptested event streams, fault plans, and
//! crash/restore cuts.

use crate::arena::{BandLedger, ShardedReadySet, NUM_BANDS};
use crate::faults::{
    CrashSemantics, FaultEvent, FaultKind, FaultNotice, FaultPlan, ResilienceReport,
};
use crate::metrics;
use crate::schedule::Schedule;
use crate::slice::Slice;
use pas_workload::{Instance, Job};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A job visible to the policy: static data plus remaining work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingJob {
    /// Job id.
    pub id: u32,
    /// Release time (the moment the policy first saw it).
    pub release: f64,
    /// Total work.
    pub work: f64,
    /// Work still to be done.
    pub remaining: f64,
}

/// The policy's window onto the released, unfinished jobs.
///
/// Both storage engines — the data-oriented
/// [`ShardedReadySet`] arena and the
/// retained AoS [`ReadySet`] reference — implement this view with
/// bit-identical answers, so a policy cannot tell which engine is
/// underneath (and `tests/online_equivalence.rs` checks that it
/// couldn't cheat if it tried).
///
/// All aggregate accessors are `O(1)`; band accessors are `O(1)` per
/// band; [`for_each`](ReadyView::for_each) visits the ready jobs in
/// **admission order** (the canonical policy-visible iteration order).
pub trait ReadyView {
    /// Number of ready jobs.
    fn len(&self) -> usize;

    /// Whether no job is ready.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The earliest-admitted ready job.
    fn first(&self) -> Option<PendingJob>;

    /// The ready job with this id.
    fn get(&self, id: u32) -> Option<PendingJob>;

    /// Total remaining work over the ready jobs (maintained
    /// incrementally; the policies' hedging denominators).
    fn backlog(&self) -> f64;

    /// Total work of every job ever released (finished or not).
    fn seen_work(&self) -> f64;

    /// Release time of the very first arrival, if any job has arrived.
    fn first_arrival(&self) -> Option<f64>;

    /// Visit every ready job in admission order.
    fn for_each(&self, f: &mut dyn FnMut(&PendingJob));

    /// The ready jobs in admission order, collected. Allocates; prefer
    /// [`for_each`](ReadyView::for_each) or the aggregates in hot
    /// policies.
    fn jobs(&self) -> Vec<PendingJob> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(&mut |p| out.push(*p));
        out
    }

    /// Number of deadline bands the run is sharded into.
    fn band_count(&self) -> usize;

    /// Release time where band 0 starts.
    fn band_origin(&self) -> f64;

    /// Width (in release time) of each band.
    fn band_width(&self) -> f64;

    /// Live (admitted, unfinished) jobs in this band.
    fn band_live(&self, band: usize) -> usize;

    /// Remaining work of the live jobs in this band.
    fn band_remaining(&self, band: usize) -> f64;

    /// Total work ever admitted in this band (finished or not) — the
    /// windowed-density policies' numerator.
    fn band_arrived(&self, band: usize) -> f64;
}

/// Engine-facing mutation contract the event loop drives. Everything
/// policy-visible lives in [`ReadyView`]; this adds the slot-level
/// operations the engine needs, with the invariant that every
/// implementation performs the identical floating-point accumulator
/// updates in the identical order (the bit-identity contract).
pub(crate) trait ReadyStore: ReadyView {
    /// An empty store whose band shards start at `origin` with `width`.
    fn with_bands(origin: f64, width: f64) -> Self
    where
        Self: Sized;

    /// Admit one job (accumulators first, then placement).
    fn admit(&mut self, job: PendingJob);

    /// Admit a release-ordered batch of arrivals. The default is the
    /// one-at-a-time loop; the arena overrides it to pre-grow its
    /// arrays, keeping the per-job operation sequence (and therefore
    /// the bits) identical.
    fn admit_batch(&mut self, jobs: &[Job]) {
        for j in jobs {
            self.admit(PendingJob {
                id: j.id,
                release: j.release,
                work: j.work,
                remaining: j.work,
            });
        }
    }

    /// Resolve a job id to its storage slot.
    fn slot(&self, id: u32) -> Option<usize>;

    /// Remaining work of the job in `slot`.
    fn remaining_at(&self, slot: usize) -> f64;

    /// Total work of the job in `slot`.
    fn work_at(&self, slot: usize) -> f64;

    /// Record `executed` units of progress on the job in `slot`.
    fn execute(&mut self, slot: usize, executed: f64);

    /// Remove the job in `slot` (completion), dropping any residual
    /// remaining from the backlog.
    fn remove(&mut self, slot: usize);

    /// Erase all in-flight progress (a lose-progress crash): every
    /// partially-executed ready job's remaining resets to its full
    /// work, summed in admission order. Returns the total erased
    /// progress; the backlog grows by the same amount.
    fn reset_progress(&mut self) -> f64;

    /// Remove a job by id (cancellation), returning its state at
    /// removal time; `None` if the id is not ready.
    fn cancel(&mut self, id: u32) -> Option<PendingJob>;
}

/// The released, unfinished jobs as an AoS `Vec` — the original
/// storage engine, retained as the reference path for the differential
/// harness (the default engine is the
/// [`ShardedReadySet`] arena).
///
/// Kept per the workspace convention that a displaced engine survives
/// as `*_reference` with an equivalence suite: drive it via
/// [`crate::reference::run_online_reference`] and compare
/// [`outcome_digest`](crate::journal::outcome_digest)s.
#[derive(Debug, Clone, Default)]
pub struct ReadySet {
    /// Dense storage; `slot_of` maps ids to slots (swap-remove keeps it
    /// dense).
    jobs: Vec<PendingJob>,
    slot_of: HashMap<u32, usize>,
    /// Ids in admission (= release) order; the front is always a live
    /// id (pruned on removal), so `first` is `O(1)`.
    queue: VecDeque<u32>,
    backlog: f64,
    seen_work: f64,
    first_arrival: Option<f64>,
    bands: BandLedger,
}

impl ReadySet {
    /// Iterate over the ready jobs in dense slot order (an
    /// implementation order — policies should use the canonical
    /// admission-order [`ReadyView::for_each`] instead).
    pub fn iter(&self) -> impl Iterator<Item = &PendingJob> {
        self.jobs.iter()
    }
}

impl ReadyView for ReadySet {
    fn len(&self) -> usize {
        self.jobs.len()
    }

    fn first(&self) -> Option<PendingJob> {
        let &id = self.queue.front()?;
        self.get(id)
    }

    fn get(&self, id: u32) -> Option<PendingJob> {
        self.slot_of.get(&id).map(|&s| self.jobs[s])
    }

    fn backlog(&self) -> f64 {
        self.backlog
    }

    fn seen_work(&self) -> f64 {
        self.seen_work
    }

    fn first_arrival(&self) -> Option<f64> {
        self.first_arrival
    }

    fn for_each(&self, f: &mut dyn FnMut(&PendingJob)) {
        for id in &self.queue {
            if let Some(&slot) = self.slot_of.get(id) {
                f(&self.jobs[slot]);
            }
        }
    }

    fn band_count(&self) -> usize {
        NUM_BANDS
    }

    fn band_origin(&self) -> f64 {
        self.bands.origin()
    }

    fn band_width(&self) -> f64 {
        self.bands.width()
    }

    fn band_live(&self, band: usize) -> usize {
        self.bands.live(band)
    }

    fn band_remaining(&self, band: usize) -> f64 {
        self.bands.remaining(band)
    }

    fn band_arrived(&self, band: usize) -> f64 {
        self.bands.arrived(band)
    }
}

impl ReadyStore for ReadySet {
    fn with_bands(origin: f64, width: f64) -> ReadySet {
        ReadySet {
            bands: BandLedger::new(origin, width),
            ..ReadySet::default()
        }
    }

    fn admit(&mut self, job: PendingJob) {
        self.seen_work += job.work;
        self.first_arrival.get_or_insert(job.release);
        self.backlog += job.remaining;
        self.bands.on_admit(&job);
        self.slot_of.insert(job.id, self.jobs.len());
        self.queue.push_back(job.id);
        self.jobs.push(job);
    }

    fn slot(&self, id: u32) -> Option<usize> {
        self.slot_of.get(&id).copied()
    }

    fn remaining_at(&self, slot: usize) -> f64 {
        self.jobs[slot].remaining
    }

    fn work_at(&self, slot: usize) -> f64 {
        self.jobs[slot].work
    }

    fn execute(&mut self, slot: usize, executed: f64) {
        self.jobs[slot].remaining -= executed;
        self.backlog -= executed;
        self.bands.on_execute(self.jobs[slot].release, executed);
    }

    fn remove(&mut self, slot: usize) {
        let job = self.jobs.swap_remove(slot);
        self.backlog -= job.remaining;
        self.bands.on_remove(&job);
        self.slot_of.remove(&job.id);
        if let Some(moved) = self.jobs.get(slot) {
            self.slot_of.insert(moved.id, slot);
        }
        // Keep the queue front live so `first` stays O(1).
        while let Some(front) = self.queue.front() {
            if self.slot_of.contains_key(front) {
                break;
            }
            self.queue.pop_front();
        }
    }

    fn reset_progress(&mut self) -> f64 {
        // Canonical admission order (matching the arena), so the
        // running total sees the same additions in the same order.
        let mut erased = 0.0;
        for i in 0..self.queue.len() {
            let id = self.queue[i];
            let Some(&slot) = self.slot_of.get(&id) else {
                continue;
            };
            let done = self.jobs[slot].work - self.jobs[slot].remaining;
            if done > 0.0 {
                erased += done;
                self.jobs[slot].remaining = self.jobs[slot].work;
                self.bands.on_reset(self.jobs[slot].release, done);
            }
        }
        self.backlog += erased;
        erased
    }

    fn cancel(&mut self, id: u32) -> Option<PendingJob> {
        let &slot = self.slot_of.get(&id)?;
        let job = self.jobs[slot];
        self.remove(slot);
        Some(job)
    }
}

/// A policy's instruction for the time starting now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Id of the pending job to run (must be in the ready set).
    pub job: u32,
    /// Speed to run it at (must be positive).
    pub speed: f64,
    /// Optional checkpoint: re-consult the policy after this much time
    /// even if nothing arrives or completes. `None` runs until the next
    /// natural event.
    pub recheck_after: Option<f64>,
}

/// An online scheduling policy.
///
/// `decide` is called whenever the world changes (arrival, completion,
/// or requested checkpoint). Returning `None` idles until the next
/// arrival or fault; idling with nothing pending and unfinished jobs
/// aborts the simulation with [`SimError::PolicyStalled`].
pub trait OnlinePolicy {
    /// Choose what to run now. `ready` is the view onto the released,
    /// unfinished jobs and their running aggregates (identical whichever
    /// storage engine backs it); `now` is the current time;
    /// `energy_spent` is the cumulative energy the engine has metered so
    /// far (under the engine's power model).
    fn decide(&mut self, now: f64, ready: &dyn ReadyView, energy_spent: f64) -> Option<Decision>;

    /// The engine's fault channel: called on crashes, recoveries,
    /// cancellations, and throttle transitions so the policy can
    /// re-plan. The default ignores the notice, so fault-oblivious
    /// policies compile and run unchanged.
    fn notify(&mut self, _notice: &FaultNotice) {}

    /// Capture the policy's internal mutable state as a flat `f64`
    /// vector for a serving-layer snapshot ([`crate::serve`]).
    ///
    /// Return `Some(vec![])` for a stateless policy (everything it
    /// needs is re-derivable from the [`ReadyView`]), `Some(state)` for
    /// a stateful one, and `None` (the default) when the policy cannot
    /// be snapshotted — restores then fall back to replaying the
    /// journal from genesis, which is slower but always exact.
    fn save_state(&self) -> Option<Vec<f64>> {
        None
    }

    /// Restore state captured by [`save_state`](OnlinePolicy::save_state);
    /// returns whether the policy accepted it. The default rejects, so
    /// snapshot-oblivious policies are restored via genesis replay.
    fn load_state(&mut self, _state: &[f64]) -> bool {
        false
    }

    /// Name for reports.
    fn name(&self) -> String {
        "online-policy".to_string()
    }
}

/// Simulation failures.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The engine was asked to run with no jobs at all.
    EmptyInstance,
    /// Policy idled while work remained and no arrivals or faults were
    /// pending.
    PolicyStalled {
        /// Time of the stall.
        at: f64,
        /// Number of unfinished jobs.
        unfinished: usize,
    },
    /// Policy chose a job that is not ready.
    UnknownJob {
        /// The offending id.
        job: u32,
        /// Decision time.
        at: f64,
    },
    /// Policy chose a non-positive or non-finite speed.
    InvalidSpeed {
        /// The offending speed.
        speed: f64,
        /// Decision time.
        at: f64,
    },
    /// Event budget exceeded (runaway checkpoint loops).
    TooManyEvents,
    /// An upstream solver or instance error reached the simulation
    /// layer (e.g. a `pas-core` error converted via `From<CoreError>`).
    /// Carries the source for [`std::error::Error::source`] chaining;
    /// equality compares the message only.
    Solver {
        /// Rendered description of the upstream failure.
        message: String,
        /// The original error, when one was captured.
        source: Option<Arc<dyn std::error::Error + Send + Sync>>,
    },
}

impl SimError {
    /// Wrap an upstream error, keeping it as the [`source`]
    /// (`std::error::Error::source`) so the full chain stays
    /// inspectable across the `pas-core`/`pas-sim` boundary.
    ///
    /// [`source`]: std::error::Error::source
    pub fn solver<E>(err: E) -> SimError
    where
        E: std::error::Error + Send + Sync + 'static,
    {
        SimError::Solver {
            message: err.to_string(),
            source: Some(Arc::new(err)),
        }
    }

    /// An upstream failure with a message only (no source to chain).
    pub fn solver_message(message: impl Into<String>) -> SimError {
        SimError::Solver {
            message: message.into(),
            source: None,
        }
    }
}

impl PartialEq for SimError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SimError::EmptyInstance, SimError::EmptyInstance)
            | (SimError::TooManyEvents, SimError::TooManyEvents) => true,
            (
                SimError::PolicyStalled { at, unfinished },
                SimError::PolicyStalled {
                    at: at2,
                    unfinished: u2,
                },
            ) => at == at2 && unfinished == u2,
            (SimError::UnknownJob { job, at }, SimError::UnknownJob { job: j2, at: at2 }) => {
                job == j2 && at == at2
            }
            (
                SimError::InvalidSpeed { speed, at },
                SimError::InvalidSpeed { speed: s2, at: at2 },
            ) => speed == s2 && at == at2,
            (SimError::Solver { message, .. }, SimError::Solver { message: m2, .. }) => {
                message == m2
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EmptyInstance => write!(f, "simulation has no jobs"),
            SimError::PolicyStalled { at, unfinished } => {
                write!(f, "policy stalled at t={at} with {unfinished} jobs left")
            }
            SimError::UnknownJob { job, at } => {
                write!(f, "policy chose unready job {job} at t={at}")
            }
            SimError::InvalidSpeed { speed, at } => {
                write!(f, "policy chose invalid speed {speed} at t={at}")
            }
            SimError::TooManyEvents => write!(f, "event budget exceeded"),
            SimError::Solver { message, .. } => write!(f, "solver error: {message}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Solver { source, .. } => source
                .as_deref()
                .map(|e| e as &(dyn std::error::Error + 'static)),
            _ => None,
        }
    }
}

/// Result of an online run.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The executed schedule (single machine).
    pub schedule: Schedule,
    /// Energy spent, metered by the engine under its power model.
    pub energy: f64,
    /// What the fault scenario cost (all-zero for fault-free runs).
    pub resilience: ResilienceReport,
    /// The instance the schedule *actually* answers for: burst jobs
    /// included, cancelled-without-execution jobs dropped, and each
    /// job's work set to the work actually executed (re-execution after
    /// a lost-progress crash makes this exceed the nominal work). The
    /// schedule always passes [`Schedule::validate`] against it. `None`
    /// when nothing was executed at all.
    pub effective: Option<Instance>,
}

/// Execute `policy` on `instance` under `model`, metering energy.
///
/// Events are processed in time order; between events the chosen job runs
/// at the chosen constant speed. The returned schedule is coalesced.
///
/// # Errors
/// [`SimError`] when the policy misbehaves (stalls, picks unknown jobs or
/// invalid speeds) or checkpoint-loops past the event budget.
pub fn run_online<M: pas_power::PowerModel>(
    instance: &Instance,
    model: &M,
    policy: &mut dyn OnlinePolicy,
) -> Result<OnlineOutcome, SimError> {
    run_online_with_faults(instance, model, policy, &FaultPlan::none())
}

/// [`run_online`] under a deterministic fault scenario: the plan's
/// events are merged into the event loop (slices never span a fault
/// boundary), the policy is [`notified`](OnlinePolicy::notify) of
/// crashes/recoveries/cancellations/throttle transitions, and the
/// outcome carries a [`ResilienceReport`] plus the *effective* instance
/// the surviving schedule validates against.
///
/// Fault semantics:
/// * **Crash** — the machine is down for the duration (policies are not
///   consulted; arrivals still queue up). With
///   [`CrashSemantics::LoseProgress`] every partially-executed job
///   restarts from scratch; checkpointed crashes cost only downtime.
/// * **Cancel** — the job is removed (or never admitted) and counts as
///   lost/cancelled work, never as a completion.
/// * **Throttle** — decision speeds are clamped to the active minimum
///   cap; each clamp is counted. Policies keep running (degraded), they
///   are not errored.
/// * **Burst** — extra jobs with fresh ids join the arrival stream.
///
/// # Errors
/// As [`run_online`].
pub fn run_online_with_faults<M: pas_power::PowerModel>(
    instance: &Instance,
    model: &M,
    policy: &mut dyn OnlinePolicy,
    plan: &FaultPlan,
) -> Result<OnlineOutcome, SimError> {
    let (arrivals, burst_jobs) = materialize_arrivals(instance, plan);
    run_engine(&arrivals, model, policy, plan, burst_jobs)
}

/// Materialize the arrival stream: base jobs plus burst jobs under
/// fresh ids, re-sorted by release. Shared by the one-shot wrappers and
/// the serving layer (which must rebuild the identical stream when
/// restoring from a journal).
pub(crate) fn materialize_arrivals(instance: &Instance, plan: &FaultPlan) -> (Vec<Job>, usize) {
    let mut arrivals = Vec::new();
    let burst_jobs = materialize_arrivals_into(instance, plan, &mut arrivals);
    (arrivals, burst_jobs)
}

/// [`materialize_arrivals`] into a caller-owned buffer (cleared first),
/// so pooling callers reuse one allocation across runs. Returns the
/// burst-job count. The fill sequence — base jobs, then bursts in plan
/// order, then one stable sort by release — is byte-for-byte the
/// allocating path's.
pub(crate) fn materialize_arrivals_into(
    instance: &Instance,
    plan: &FaultPlan,
    arrivals: &mut Vec<Job>,
) -> usize {
    arrivals.clear();
    arrivals.extend_from_slice(instance.jobs());
    let mut next_id = arrivals.iter().map(|j| j.id).max().map_or(0, |m| m + 1);
    let mut burst_jobs = 0usize;
    for ev in plan.events() {
        if let FaultKind::ArrivalBurst { jobs } = &ev.kind {
            for b in jobs {
                arrivals.push(Job::new(next_id, ev.at + b.offset, b.work));
                next_id += 1;
                burst_jobs += 1;
            }
        }
    }
    arrivals.sort_by(|a, b| a.release.total_cmp(&b.release));
    burst_jobs
}

/// [`run_online_with_faults`] behind a bounded admission queue: the
/// one-shot equivalent of serving the instance through
/// [`crate::serve::Server`] with admission control but no journal.
/// Shed decisions are deterministic functions of the engine state, so
/// this is also the reference surface the differential harness uses to
/// compare the gated admission path across storage engines (see
/// [`crate::reference::run_online_gated_reference`]).
///
/// # Errors
/// As [`run_online`].
pub fn run_online_gated<M: pas_power::PowerModel>(
    instance: &Instance,
    model: &M,
    policy: &mut dyn OnlinePolicy,
    plan: &FaultPlan,
    admission: AdmissionConfig,
) -> Result<OnlineOutcome, SimError> {
    let (arrivals, burst_jobs) = materialize_arrivals(instance, plan);
    run_engine_in::<ShardedReadySet, M>(&arrivals, model, policy, plan, burst_jobs, Some(admission))
}

/// Reusable allocation pool for back-to-back engine runs.
///
/// Holds the two big per-run allocations — the materialized arrival
/// buffer and the [`ShardedReadySet`] arena (whose lane vectors, free
/// list, id map, and queue all keep their capacity) — so a caller
/// executing many instances in sequence (the fleet executor's
/// worker-local scratch, one pool per worker thread) clears rather than
/// reallocates between runs. [`run_online_pooled`] is the entry point;
/// its outcome is bit-identical to [`run_online_with_faults`] /
/// [`run_online_gated`] because a recycled arena is observationally
/// identical to a fresh one.
#[derive(Debug, Default)]
pub struct EngineScratch {
    arrivals: Vec<Job>,
    ready: ShardedReadySet,
}

impl EngineScratch {
    /// An empty pool; buffers grow on first use.
    pub fn new() -> EngineScratch {
        EngineScratch::default()
    }

    /// A pool pre-sized for runs of up to `jobs` arrivals, so even the
    /// first run admits without growing.
    pub fn with_capacity(jobs: usize) -> EngineScratch {
        let mut scratch = EngineScratch::default();
        scratch.arrivals.reserve(jobs);
        scratch.ready.reserve_slots(jobs);
        scratch
    }
}

/// [`run_online_with_faults`] (or, with `admission`,
/// [`run_online_gated`]) drawing its big allocations from `scratch`
/// instead of the heap: bit-identical outcome, no per-run arrival or
/// arena allocation. The scratch is reclaimed after the run — including
/// most error paths — and may be reused immediately.
///
/// # Errors
/// As [`run_online`].
pub fn run_online_pooled<M: pas_power::PowerModel>(
    instance: &Instance,
    model: &M,
    policy: &mut dyn OnlinePolicy,
    plan: &FaultPlan,
    admission: Option<AdmissionConfig>,
    scratch: &mut EngineScratch,
) -> Result<OnlineOutcome, SimError> {
    let burst_jobs = materialize_arrivals_into(instance, plan, &mut scratch.arrivals);
    let arrivals = std::mem::take(&mut scratch.arrivals);
    let ready_pool = &mut scratch.ready;
    let mut engine = EngineState::<ShardedReadySet>::new_with_store(
        arrivals,
        plan,
        burst_jobs,
        admission,
        |origin, width| {
            let mut ready = std::mem::take(ready_pool);
            ready.recycle(origin, width);
            ready
        },
    )?;
    let mut stepped = Ok(());
    while !engine.done() {
        if let Err(e) = engine.step(model, policy) {
            stepped = Err(e);
            break;
        }
    }
    let outcome = match stepped {
        Ok(()) => engine.seal(),
        Err(e) => Err(e),
    };
    // Reclaim the buffers whether or not the run succeeded.
    scratch.arrivals = std::mem::take(&mut engine.arrivals);
    scratch.ready = std::mem::take(&mut engine.ready);
    outcome
}

/// The engine proper, over a release-sorted arrival list (base jobs +
/// bursts). Separated from the public wrappers so the empty-arrivals
/// guard is testable even though `Instance` cannot be empty.
fn run_engine<M: pas_power::PowerModel>(
    arrivals: &[Job],
    model: &M,
    policy: &mut dyn OnlinePolicy,
    plan: &FaultPlan,
    burst_jobs: usize,
) -> Result<OnlineOutcome, SimError> {
    run_engine_in::<ShardedReadySet, M>(arrivals, model, policy, plan, burst_jobs, None)
}

/// The event loop, generic over the storage engine — the single code
/// path both the arena and the retained reference execute, which is
/// what makes their outcomes bit-comparable.
pub(crate) fn run_engine_in<R: ReadyStore, M: pas_power::PowerModel>(
    arrivals: &[Job],
    model: &M,
    policy: &mut dyn OnlinePolicy,
    plan: &FaultPlan,
    burst_jobs: usize,
    admission: Option<AdmissionConfig>,
) -> Result<OnlineOutcome, SimError> {
    let mut engine = EngineState::<R>::new(arrivals.to_vec(), plan, burst_jobs, admission)?;
    while !engine.done() {
        engine.step(model, policy)?;
    }
    engine.finish()
}

/// Load-shedding rule for a bounded admission queue. Used by the
/// serving layer ([`crate::serve`]); the one-shot `run_online*` entry
/// points admit everything. All rules are deterministic functions of
/// the engine state, so shed decisions replay exactly from a journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShedPolicy {
    /// Reject the arriving job when the queue is full.
    RejectNewest,
    /// Evict the earliest-admitted ready job to make room for the
    /// arrival; any partial progress on the victim is wasted (counted
    /// as lost work / wasted energy).
    EvictOldest,
    /// Backpressure with an SLO model: shed an arrival when the queue
    /// is full **or** when its predicted flow
    /// `(backlog + work) / service_rate` already exceeds `slo` — the
    /// job would miss its deadline anyway, so rejecting it up front
    /// protects the jobs that can still make it.
    DeadlineAware {
        /// Flow SLO the prediction is checked against (`> 0`).
        slo: f64,
        /// Assumed sustained service speed (`> 0`).
        service_rate: f64,
    },
}

/// Bounded admission queue for the serving layer: at most `capacity`
/// admitted-but-unfinished jobs, with `shed` deciding what happens at
/// the bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum number of ready (admitted, unfinished) jobs.
    pub capacity: usize,
    /// What to do when admission would exceed the capacity (or, for
    /// deadline-aware shedding, when the SLO is already hopeless).
    pub shed: ShedPolicy,
}

enum Gate {
    Admit,
    Shed,
    EvictOldest,
}

fn gate(ac: &AdmissionConfig, job: &Job, ready: &dyn ReadyView) -> Gate {
    let full = ready.len() >= ac.capacity;
    match ac.shed {
        ShedPolicy::RejectNewest => {
            if full {
                Gate::Shed
            } else {
                Gate::Admit
            }
        }
        ShedPolicy::EvictOldest => {
            if full {
                Gate::EvictOldest
            } else {
                Gate::Admit
            }
        }
        ShedPolicy::DeadlineAware { slo, service_rate } => {
            if full || (ready.backlog() + job.work) / service_rate > slo {
                Gate::Shed
            } else {
                Gate::Admit
            }
        }
    }
}

/// The engine's full mutable state, advanced one event at a time.
///
/// [`run_engine`] drives it in a plain loop (the one-shot semantics are
/// bit-identical to the pre-refactor monolith); the serving layer
/// ([`crate::serve`]) drives it step by step so it can journal every
/// decision, snapshot between steps, and restore a crashed process to
/// the exact state it died in. Every field is `pub(crate)` so the
/// snapshot codec in [`crate::journal`] can capture and rebuild the
/// state bit-for-bit.
///
/// Generic over the `ReadyStore` storage engine: the default is the
/// [`ShardedReadySet`] arena; [`crate::reference`] instantiates the
/// same loop over the retained [`ReadySet`] for the differential
/// harness.
pub(crate) struct EngineState<R: ReadyStore = ShardedReadySet> {
    pub(crate) arrivals: Vec<Job>,
    pub(crate) events: Vec<FaultEvent>,
    pub(crate) slo: Option<f64>,
    pub(crate) admission: Option<AdmissionConfig>,
    pub(crate) n: usize,
    pub(crate) report: ResilienceReport,
    pub(crate) next_arrival: usize,
    pub(crate) ready: R,
    /// Completions + cancellations + sheds (jobs the run no longer
    /// waits for).
    pub(crate) finished: usize,
    pub(crate) schedule: Schedule,
    pub(crate) energy: f64,
    /// Per-job energy metered since the job's last restart; drained on
    /// delivery, charged to `wasted_energy` on erasure/cancellation.
    pub(crate) energy_by_job: HashMap<u32, f64>,
    /// Cancelled before arrival (never admitted).
    pub(crate) cancelled_pre: HashSet<u32>,
    pub(crate) cancelled_all: HashSet<u32>,
    /// Jobs rejected/evicted by admission control.
    pub(crate) shed: HashSet<u32>,
    pub(crate) i_fault: usize,
    pub(crate) in_downtime: bool,
    pub(crate) down_until: f64,
    pub(crate) down_since: f64,
    pub(crate) erased_this_down: f64,
    /// (crash start, recovery time) pairs awaiting their first
    /// post-recovery slice, which resolves the recovery latency.
    pub(crate) pending_recoveries: VecDeque<(f64, f64)>,
    /// Active throttle windows as (until, cap).
    pub(crate) throttles: Vec<(f64, f64)>,
    pub(crate) now: f64,
    /// Event budget: generous, proportional to the event sources, to
    /// stop checkpoint loops.
    pub(crate) budget: usize,
}

impl<R: ReadyStore> EngineState<R> {
    pub(crate) fn new(
        arrivals: Vec<Job>,
        plan: &FaultPlan,
        burst_jobs: usize,
        admission: Option<AdmissionConfig>,
    ) -> Result<EngineState<R>, SimError> {
        EngineState::new_with_store(arrivals, plan, burst_jobs, admission, R::with_bands)
    }

    /// [`EngineState::new`] with the ready store supplied by `make_ready`
    /// (called with the derived band origin/width). This is the
    /// allocation-pooling hook: [`EngineScratch`] passes a recycled
    /// arena whose lanes keep their capacity across runs; the default
    /// path passes [`ReadyStore::with_bands`]. A recycled store must be
    /// observationally identical to a fresh one, so the choice can never
    /// reach a digest.
    pub(crate) fn new_with_store(
        arrivals: Vec<Job>,
        plan: &FaultPlan,
        burst_jobs: usize,
        admission: Option<AdmissionConfig>,
        make_ready: impl FnOnce(f64, f64) -> R,
    ) -> Result<EngineState<R>, SimError> {
        let n = arrivals.len();
        if n == 0 {
            return Err(SimError::EmptyInstance);
        }
        let events = plan.events().to_vec();
        // Start at the first arrival or the first fault, whichever is
        // earlier (early crashes must still account their downtime).
        let mut now = arrivals[0].release;
        if let Some(first_ev) = events.first() {
            now = now.min(first_ev.at);
        }
        // Deadline-band shards: equal-width release windows spanning
        // the materialized arrival stream. Derived deterministically
        // from `arrivals`, so journal restores recompute the identical
        // parameters.
        let origin = arrivals[0].release;
        let span = arrivals[n - 1].release - origin;
        let width = if span > 0.0 {
            span / NUM_BANDS as f64
        } else {
            1.0
        };
        let budget = 10_000 * (n + events.len() + 1);
        let mut engine = EngineState {
            arrivals,
            events,
            slo: plan.slo(),
            admission,
            n,
            report: ResilienceReport {
                burst_jobs,
                ..ResilienceReport::default()
            },
            next_arrival: 0,
            ready: make_ready(origin, width),
            finished: 0,
            schedule: Schedule::single(),
            energy: 0.0,
            energy_by_job: HashMap::new(),
            cancelled_pre: HashSet::new(),
            cancelled_all: HashSet::new(),
            shed: HashSet::new(),
            i_fault: 0,
            in_downtime: false,
            down_until: f64::NEG_INFINITY,
            down_since: 0.0,
            erased_this_down: 0.0,
            pending_recoveries: VecDeque::new(),
            throttles: Vec::new(),
            now,
            budget,
        };
        engine.admit_due();
        Ok(engine)
    }

    /// Whether every job has been completed, cancelled, or shed.
    pub(crate) fn done(&self) -> bool {
        self.finished >= self.n
    }

    /// Admit all non-cancelled jobs released at (or before) `now`,
    /// gated by admission control when configured. The admission
    /// epsilon scales with `now` so same-instant floods at large
    /// timestamps are admitted together instead of spinning.
    ///
    /// Without a gate or pre-cancellations in play, the whole due run
    /// is handed to the store as one batch
    /// ([`ReadyStore::admit_batch`]), which ingests it with the same
    /// per-job operation sequence as the one-at-a-time path — identical
    /// bits, one allocation.
    fn admit_due(&mut self) {
        let horizon = self.now + 1e-12 * self.now.abs().max(1.0);
        if self.admission.is_none() && self.cancelled_pre.is_empty() {
            let start = self.next_arrival;
            let mut end = start;
            while end < self.n && self.arrivals[end].release <= horizon {
                end += 1;
            }
            if end > start {
                self.ready.admit_batch(&self.arrivals[start..end]);
                self.next_arrival = end;
            }
            return;
        }
        while self.next_arrival < self.n && self.arrivals[self.next_arrival].release <= horizon {
            let j = self.arrivals[self.next_arrival];
            self.next_arrival += 1;
            if self.cancelled_pre.contains(&j.id) {
                continue;
            }
            if let Some(ac) = self.admission {
                match gate(&ac, &j, &self.ready) {
                    Gate::Admit => {}
                    Gate::Shed => {
                        self.shed.insert(j.id);
                        self.report.shed_jobs += 1;
                        self.report.shed_work += j.work;
                        self.finished += 1;
                        continue;
                    }
                    Gate::EvictOldest => {
                        if let Some(victim) = self.ready.first().map(|p| p.id) {
                            self.evict_ready(victim);
                        }
                    }
                }
            }
            self.ready.admit(PendingJob {
                id: j.id,
                release: j.release,
                work: j.work,
                remaining: j.work,
            });
        }
    }

    /// Shed an already-admitted job (EvictOldest making room): its
    /// partial progress becomes lost work and wasted energy, exactly
    /// like a cancellation, but accounted under the shed counters.
    fn evict_ready(&mut self, id: u32) {
        if let Some(p) = self.ready.cancel(id) {
            self.shed.insert(id);
            self.report.shed_jobs += 1;
            self.report.shed_work += p.work;
            self.report.lost_work += p.work - p.remaining;
            self.report.wasted_energy += self.energy_by_job.remove(&id).unwrap_or(0.0);
            self.finished += 1;
        }
    }

    /// Advance the simulation by one event: apply due faults, expire
    /// throttles, fast-forward downtime, or consult the policy and
    /// execute one slice. One call corresponds exactly to one iteration
    /// of the pre-refactor engine loop.
    pub(crate) fn step<M: pas_power::PowerModel>(
        &mut self,
        model: &M,
        policy: &mut dyn OnlinePolicy,
    ) -> Result<(), SimError> {
        self.budget -= 1;
        if self.budget == 0 {
            return Err(SimError::TooManyEvents);
        }

        // 1. Apply every fault due at the current time. Slices never
        // span a fault boundary (dt is truncated below), so `now` is
        // exactly the event time for events inside the active horizon.
        while self.i_fault < self.events.len() && self.events[self.i_fault].at <= self.now {
            let ev = self.events[self.i_fault].clone();
            self.i_fault += 1;
            match ev.kind {
                FaultKind::Crash {
                    duration,
                    semantics,
                } => {
                    self.report.crashes += 1;
                    policy.notify(&FaultNotice::Crashed {
                        at: self.now,
                        semantics,
                    });
                    if !self.in_downtime {
                        self.in_downtime = true;
                        self.down_since = self.now;
                        self.erased_this_down = 0.0;
                        self.down_until = self.now;
                    }
                    if semantics == CrashSemantics::LoseProgress {
                        // Canonical admission order for the wasted-energy
                        // sum, so both storage engines accumulate the
                        // same additions in the same order.
                        let mut partial: Vec<u32> = Vec::new();
                        self.ready.for_each(&mut |p| {
                            if p.remaining < p.work {
                                partial.push(p.id);
                            }
                        });
                        for id in partial {
                            self.report.wasted_energy +=
                                self.energy_by_job.remove(&id).unwrap_or(0.0);
                        }
                        let erased = self.ready.reset_progress();
                        self.report.lost_work += erased;
                        self.erased_this_down += erased;
                    }
                    self.down_until = self.down_until.max(self.now + duration);
                }
                FaultKind::CancelJob { job } => {
                    if let Some(p) = self.ready.cancel(job) {
                        policy.notify(&FaultNotice::JobCancelled { at: self.now, job });
                        self.report.cancelled_jobs += 1;
                        self.report.cancelled_work += p.work;
                        self.report.lost_work += p.work - p.remaining;
                        self.report.wasted_energy += self.energy_by_job.remove(&job).unwrap_or(0.0);
                        self.cancelled_all.insert(job);
                        self.finished += 1;
                    } else if !self.cancelled_pre.contains(&job) {
                        let pending = self.arrivals[self.next_arrival..]
                            .iter()
                            .find(|a| a.id == job)
                            .copied();
                        if let Some(a) = pending {
                            policy.notify(&FaultNotice::JobCancelled { at: self.now, job });
                            self.report.cancelled_jobs += 1;
                            self.report.cancelled_work += a.work;
                            self.cancelled_pre.insert(job);
                            self.cancelled_all.insert(job);
                            self.finished += 1;
                        }
                        // Unknown or already-completed job: no-op.
                    }
                }
                FaultKind::Throttle { duration, cap } => {
                    let until = self.now + duration;
                    self.throttles.push((until, cap));
                    policy.notify(&FaultNotice::Throttled {
                        at: self.now,
                        until,
                        cap,
                    });
                }
                FaultKind::ArrivalBurst { .. } => {
                    // Burst jobs joined the arrival stream up front.
                }
            }
        }
        if self.finished >= self.n {
            return Ok(());
        }

        // 2. Expire throttle windows.
        if !self.throttles.is_empty() {
            let now = self.now;
            self.throttles.retain(|&(until, _)| until > now);
            if self.throttles.is_empty() {
                policy.notify(&FaultNotice::ThrottleLifted { at: self.now });
            }
        }

        // 3. Downtime: fast-forward to recovery (or the next fault,
        // which may extend the outage), admitting arrivals as time
        // passes but never consulting the policy.
        if self.in_downtime {
            if self.now < self.down_until {
                let next_fault_at = self
                    .events
                    .get(self.i_fault)
                    .map_or(f64::INFINITY, |e| e.at);
                self.now = self.down_until.min(next_fault_at);
                self.admit_due();
                return Ok(());
            }
            self.in_downtime = false;
            let downtime = self.now - self.down_since;
            self.report.downtime += downtime;
            self.pending_recoveries
                .push_back((self.down_since, self.now));
            policy.notify(&FaultNotice::Recovered {
                at: self.now,
                downtime,
                lost_work: self.erased_this_down,
            });
        }

        // 4. Consult the policy.
        let decision = policy.decide(self.now, &self.ready, self.energy);
        match decision {
            None => {
                // Idle until the next arrival or fault.
                let next_arrival_at = if self.next_arrival < self.n {
                    self.arrivals[self.next_arrival].release
                } else {
                    f64::INFINITY
                };
                let next_fault_at = self
                    .events
                    .get(self.i_fault)
                    .map_or(f64::INFINITY, |e| e.at);
                let target = next_arrival_at.min(next_fault_at);
                if !target.is_finite() {
                    return Err(SimError::PolicyStalled {
                        at: self.now,
                        unfinished: self.n - self.finished,
                    });
                }
                self.now = self.now.max(target);
                self.admit_due();
            }
            Some(Decision {
                job,
                speed,
                recheck_after,
            }) => {
                if !(speed.is_finite() && speed > 0.0) {
                    return Err(SimError::InvalidSpeed {
                        speed,
                        at: self.now,
                    });
                }
                let Some(slot) = self.ready.slot(job) else {
                    return Err(SimError::UnknownJob { job, at: self.now });
                };
                // Graceful degradation: clamp to the active throttle
                // cap instead of failing the decision.
                let cap = self
                    .throttles
                    .iter()
                    .map(|&(_, c)| c)
                    .fold(f64::INFINITY, f64::min);
                let speed = if speed > cap {
                    self.report.throttle_clamps += 1;
                    cap
                } else {
                    speed
                };
                // Run until completion, next arrival, checkpoint, next
                // fault, or throttle expiry — whichever comes first.
                let completion_in = self.ready.remaining_at(slot) / speed;
                let arrival_in = if self.next_arrival < self.n {
                    self.arrivals[self.next_arrival].release - self.now
                } else {
                    f64::INFINITY
                };
                let recheck_in = recheck_after.unwrap_or(f64::INFINITY).max(1e-12);
                let fault_in = self
                    .events
                    .get(self.i_fault)
                    .map_or(f64::INFINITY, |e| e.at - self.now);
                let expiry_in = self
                    .throttles
                    .iter()
                    .map(|&(u, _)| u)
                    .fold(f64::INFINITY, f64::min)
                    - self.now;
                let dt = completion_in
                    .min(arrival_in)
                    .min(recheck_in)
                    .min(fault_in)
                    .min(expiry_in);
                if dt > 0.0 {
                    // First work after a recovery resolves its latency.
                    while let Some(&(crash_at, recovered_at)) = self.pending_recoveries.front() {
                        if recovered_at <= self.now {
                            self.report.recovery_latencies.push(self.now - crash_at);
                            self.pending_recoveries.pop_front();
                        } else {
                            break;
                        }
                    }
                    self.schedule
                        .push(0, Slice::new(job, self.now, self.now + dt, speed));
                    let spent = model.power(speed) * dt;
                    self.energy += spent;
                    *self.energy_by_job.entry(job).or_insert(0.0) += spent;
                    // Clamp so the backlog accumulator cannot absorb a
                    // negative residual at completion.
                    let executed = (speed * dt).min(self.ready.remaining_at(slot));
                    self.ready.execute(slot, executed);
                    self.now += dt;
                }
                if self.ready.remaining_at(slot) <= 1e-9 * self.ready.work_at(slot) {
                    // Snap any residual into the final slice via coalesce
                    // tolerance; mark complete. Delivered energy is not
                    // overhead.
                    self.energy_by_job.remove(&job);
                    self.ready.remove(slot);
                    self.finished += 1;
                }
                self.admit_due();
            }
        }
        Ok(())
    }

    /// Seal the run: coalesce the schedule, resolve dangling recovery
    /// latencies, build the effective instance, and count SLO misses.
    pub(crate) fn finish(mut self) -> Result<OnlineOutcome, SimError> {
        self.seal()
    }

    /// [`EngineState::finish`] by mutable reference: the sealed outcome
    /// moves out (schedule, report), but the state value survives so
    /// pooling callers can reclaim its buffers afterwards. Sealing
    /// twice would return an empty outcome — callers seal exactly once.
    pub(crate) fn seal(&mut self) -> Result<OnlineOutcome, SimError> {
        self.schedule.coalesce(1e-9);

        // Crashes whose recovery never saw another slice: latency runs
        // to the end of the simulation.
        for (crash_at, recovered_at) in std::mem::take(&mut self.pending_recoveries) {
            self.report
                .recovery_latencies
                .push(self.now.max(recovered_at) - crash_at);
        }

        // The effective instance: exactly the jobs with executed work,
        // at their executed totals (shared accounting with `metrics`),
        // so the schedule validates against it even after re-execution,
        // partial cancellation, or a mid-queue eviction.
        let executed = metrics::executed_work_by_job(&self.schedule);
        let eff: Vec<Job> = self
            .arrivals
            .iter()
            .filter_map(|j| executed.get(&j.id).map(|&w| Job::new(j.id, j.release, w)))
            .filter(|j| j.work > 0.0)
            .collect();
        let effective = if eff.is_empty() {
            None
        } else {
            Some(Instance::new(eff).map_err(SimError::solver)?)
        };

        // Deadline misses against the plan's SLO: delivered jobs via
        // the shared metric; every cancelled or shed job is a miss.
        if let Some(slo) = self.slo {
            let delivered: Vec<Job> = self
                .arrivals
                .iter()
                .filter(|j| !self.cancelled_all.contains(&j.id) && !self.shed.contains(&j.id))
                .copied()
                .collect();
            let mut misses = self.report.cancelled_jobs + self.report.shed_jobs;
            if !delivered.is_empty() {
                if let Ok(inst) = Instance::new(delivered) {
                    misses += metrics::deadline_misses(&self.schedule, &inst, slo);
                }
            }
            self.report.deadline_misses = Some(misses);
        }

        Ok(OnlineOutcome {
            schedule: std::mem::replace(&mut self.schedule, Schedule::single()),
            energy: self.energy,
            resilience: std::mem::take(&mut self.report),
            effective,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{BurstJob, FaultEvent, FaultModel};
    use crate::metrics;
    use pas_power::PolyPower;

    /// Runs everything at a fixed speed, FIFO.
    struct FixedSpeed(f64);

    impl OnlinePolicy for FixedSpeed {
        fn decide(&mut self, _now: f64, ready: &dyn ReadyView, _energy: f64) -> Option<Decision> {
            ready.first().map(|p| Decision {
                job: p.id,
                speed: self.0,
                recheck_after: None,
            })
        }
        fn name(&self) -> String {
            format!("fixed({})", self.0)
        }
    }

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    #[test]
    fn fixed_speed_completes_and_validates() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let out = run_online(&inst, &model, &mut FixedSpeed(2.0)).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        // 8 total work at speed 2, released over [0,6]: the machine is
        // never starved, so makespan = max(release chain).
        let mk = metrics::makespan(&out.schedule);
        assert!(mk >= 4.0 - 1e-9, "makespan {mk}");
        // Energy: 8 work at speed 2 under σ³ -> w·σ² = 32.
        assert!((out.energy - 32.0).abs() < 1e-6, "energy {}", out.energy);
        // Fault-free runs report a clean resilience record and an
        // effective instance equivalent to the input.
        assert!(out.resilience.is_clean());
        let eff = out.effective.expect("work was executed");
        eff.jobs().iter().zip(inst.jobs()).for_each(|(e, j)| {
            assert_eq!(e.id, j.id);
            assert!((e.work - j.work).abs() < 1e-6 * j.work);
        });
        out.schedule.validate(&eff, 1e-6).unwrap();
    }

    #[test]
    fn ready_set_aggregates_track_the_run() {
        struct Check {
            max_seen: f64,
        }
        impl OnlinePolicy for Check {
            fn decide(
                &mut self,
                _now: f64,
                ready: &dyn ReadyView,
                _energy: f64,
            ) -> Option<Decision> {
                // Aggregates stay consistent with the job list.
                let listed: f64 = ready.jobs().iter().map(|p| p.remaining).sum();
                assert!((ready.backlog() - listed).abs() < 1e-9);
                assert!(ready.seen_work() >= listed - 1e-9);
                assert_eq!(ready.first_arrival(), Some(0.0));
                self.max_seen = self.max_seen.max(ready.seen_work());
                ready.first().map(|p| Decision {
                    job: p.id,
                    speed: 1.0,
                    recheck_after: None,
                })
            }
        }
        let inst = paper_instance();
        let mut policy = Check { max_seen: 0.0 };
        let out = run_online(&inst, &PolyPower::CUBE, &mut policy).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        assert!((policy.max_seen - 8.0).abs() < 1e-9, "{}", policy.max_seen);
    }

    #[test]
    fn pooled_runs_are_bit_identical_across_reuse() {
        use crate::journal::outcome_digest;
        let model = PolyPower::CUBE;
        let plan = FaultModel::uniform_mix(0.4).sample(12.0, &[0, 1, 2], 9);
        let gate = AdmissionConfig {
            capacity: 2,
            shed: ShedPolicy::RejectNewest,
        };
        // One scratch reused across differently-shaped runs, each
        // compared to the allocating entry point at digest level.
        let mut scratch = EngineScratch::with_capacity(4);
        let instances = [
            paper_instance(),
            Instance::from_pairs(&[(0.0, 1.0), (0.0, 2.0), (2.5, 0.5), (3.0, 4.0)]).unwrap(),
            Instance::from_pairs(&[(1.0, 3.0)]).unwrap(),
        ];
        for inst in &instances {
            let fresh = run_online_with_faults(inst, &model, &mut FixedSpeed(2.0), &plan).unwrap();
            let pooled = run_online_pooled(
                inst,
                &model,
                &mut FixedSpeed(2.0),
                &plan,
                None,
                &mut scratch,
            )
            .unwrap();
            assert_eq!(outcome_digest(&fresh), outcome_digest(&pooled));
            assert_eq!(fresh.energy.to_bits(), pooled.energy.to_bits());

            let fresh_gated =
                run_online_gated(inst, &model, &mut FixedSpeed(2.0), &plan, gate).unwrap();
            let pooled_gated = run_online_pooled(
                inst,
                &model,
                &mut FixedSpeed(2.0),
                &plan,
                Some(gate),
                &mut scratch,
            )
            .unwrap();
            assert_eq!(outcome_digest(&fresh_gated), outcome_digest(&pooled_gated));
        }
    }

    #[test]
    fn slow_speed_creates_no_idle_fast_speed_idles() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        // At speed 10 the first job finishes at t=0.5, then idle till 5.
        let out = run_online(&inst, &model, &mut FixedSpeed(10.0)).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        let lane = out.schedule.machine(0);
        assert!(lane.windows(2).any(|p| p[1].start > p[0].end + 1e-9));
    }

    #[test]
    fn stalling_policy_is_reported() {
        struct Lazy;
        impl OnlinePolicy for Lazy {
            fn decide(&mut self, _: f64, _: &dyn ReadyView, _: f64) -> Option<Decision> {
                None
            }
        }
        let inst = paper_instance();
        let err = run_online(&inst, &PolyPower::CUBE, &mut Lazy).unwrap_err();
        assert!(matches!(err, SimError::PolicyStalled { unfinished: 3, .. }));
    }

    #[test]
    fn invalid_decisions_are_reported() {
        struct BadSpeed;
        impl OnlinePolicy for BadSpeed {
            fn decide(&mut self, _: f64, r: &dyn ReadyView, _: f64) -> Option<Decision> {
                r.first().map(|p| Decision {
                    job: p.id,
                    speed: -1.0,
                    recheck_after: None,
                })
            }
        }
        struct WrongJob;
        impl OnlinePolicy for WrongJob {
            fn decide(&mut self, _: f64, _: &dyn ReadyView, _: f64) -> Option<Decision> {
                Some(Decision {
                    job: 999,
                    speed: 1.0,
                    recheck_after: None,
                })
            }
        }
        let inst = paper_instance();
        assert!(matches!(
            run_online(&inst, &PolyPower::CUBE, &mut BadSpeed).unwrap_err(),
            SimError::InvalidSpeed { .. }
        ));
        assert!(matches!(
            run_online(&inst, &PolyPower::CUBE, &mut WrongJob).unwrap_err(),
            SimError::UnknownJob { job: 999, .. }
        ));
    }

    #[test]
    fn checkpoints_allow_speed_ramps() {
        /// Doubles its speed at every checkpoint (exercises recheck).
        struct Ramp {
            speed: f64,
        }
        impl OnlinePolicy for Ramp {
            fn decide(&mut self, _: f64, r: &dyn ReadyView, _: f64) -> Option<Decision> {
                self.speed *= 2.0;
                r.first().map(|p| Decision {
                    job: p.id,
                    speed: self.speed,
                    recheck_after: Some(0.5),
                })
            }
        }
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let out = run_online(&inst, &PolyPower::CUBE, &mut Ramp { speed: 0.5 }).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        // Multiple slices at increasing speeds.
        let lane = out.schedule.machine(0);
        assert!(lane.len() >= 2);
        for pair in lane.windows(2) {
            assert!(pair[1].speed > pair[0].speed);
        }
    }

    #[test]
    fn preemption_on_arrival_is_possible() {
        /// Shortest-remaining-work-first at unit speed: arrival of a short
        /// job preempts a long one.
        struct Srpt;
        impl OnlinePolicy for Srpt {
            fn decide(&mut self, _: f64, r: &dyn ReadyView, _: f64) -> Option<Decision> {
                r.jobs()
                    .into_iter()
                    .min_by(|a, b| a.remaining.total_cmp(&b.remaining))
                    .map(|p| Decision {
                        job: p.id,
                        speed: 1.0,
                        recheck_after: None,
                    })
            }
        }
        let inst = Instance::from_pairs(&[(0.0, 10.0), (1.0, 1.0)]).unwrap();
        let out = run_online(&inst, &PolyPower::CUBE, &mut Srpt).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        let completions = out.schedule.completion_times();
        // Short job finishes at 2 (preempts), long at 11.
        assert!((completions[&1] - 2.0).abs() < 1e-9);
        assert!((completions[&0] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn empty_arrivals_are_a_typed_error() {
        let plan = FaultPlan::none();
        let err = run_engine(&[], &PolyPower::CUBE, &mut FixedSpeed(1.0), &plan, 0).unwrap_err();
        assert_eq!(err, SimError::EmptyInstance);
    }

    #[test]
    fn same_instant_flood_at_large_timestamp_drops_nothing() {
        // 500 jobs all released at t = 1e9: the absolute 1e-12 epsilon
        // is below one ulp there; the relative epsilon must admit the
        // whole flood and the run must complete every job.
        let t0 = 1e9;
        let jobs: Vec<Job> = (0..500).map(|i| Job::new(i, t0, 1.0)).collect();
        let inst = Instance::new(jobs).unwrap();
        let out = run_online(&inst, &PolyPower::CUBE, &mut FixedSpeed(4.0)).unwrap();
        assert_eq!(out.schedule.completion_times().len(), 500);
        out.schedule.validate(&inst, 1e-6).unwrap();
        assert!(out.energy.is_finite());
    }

    #[test]
    fn checkpointed_crash_costs_only_downtime() {
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 1.0,
            kind: FaultKind::Crash {
                duration: 2.0,
                semantics: CrashSemantics::Checkpointed,
            },
        }])
        .unwrap();
        let out =
            run_online_with_faults(&inst, &PolyPower::CUBE, &mut FixedSpeed(1.0), &plan).unwrap();
        let r = &out.resilience;
        assert_eq!(r.crashes, 1);
        assert!((r.downtime - 2.0).abs() < 1e-9, "downtime {}", r.downtime);
        assert_eq!(r.lost_work, 0.0);
        // Work pauses over [1, 3]: completion at 6 instead of 4.
        let c = out.schedule.completion_times()[&0];
        assert!((c - 6.0).abs() < 1e-9, "completion {c}");
        // Recovery latency = downtime (work restarts immediately).
        assert!((r.max_recovery_latency() - 2.0).abs() < 1e-9);
        // Energy unchanged vs a fault-free run (same work, same speed).
        assert!((out.energy - 4.0).abs() < 1e-9);
        assert_eq!(r.wasted_energy, 0.0);
        out.schedule
            .validate(out.effective.as_ref().unwrap(), 1e-6)
            .unwrap();
    }

    #[test]
    fn lost_progress_crash_re_executes_work() {
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 1.0,
            kind: FaultKind::Crash {
                duration: 1.0,
                semantics: CrashSemantics::LoseProgress,
            },
        }])
        .unwrap();
        let out =
            run_online_with_faults(&inst, &PolyPower::CUBE, &mut FixedSpeed(1.0), &plan).unwrap();
        let r = &out.resilience;
        assert!((r.lost_work - 1.0).abs() < 1e-9, "lost {}", r.lost_work);
        // 1 unit executed pre-crash at speed 1 under σ³ = 1 energy wasted.
        assert!((r.wasted_energy - 1.0).abs() < 1e-9);
        // Re-execution: completion at 1 (crash) + 1 (down) + 4 (full) = 6.
        let c = out.schedule.completion_times()[&0];
        assert!((c - 6.0).abs() < 1e-9, "completion {c}");
        // Effective work = 5 (1 erased + 4 delivered); validates.
        let eff = out.effective.as_ref().unwrap();
        assert!((eff.job(0).work - 5.0).abs() < 1e-6);
        out.schedule.validate(eff, 1e-6).unwrap();
        // Total energy covers the re-execution.
        assert!((out.energy - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cancellation_is_not_a_completion() {
        let inst = Instance::from_pairs(&[(0.0, 2.0), (0.0, 2.0), (10.0, 1.0)]).unwrap();
        // Cancel job 1 mid-run and job 2 before it arrives.
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 1.0,
                kind: FaultKind::CancelJob { job: 1 },
            },
            FaultEvent {
                at: 3.0,
                kind: FaultKind::CancelJob { job: 2 },
            },
        ])
        .unwrap();
        let out =
            run_online_with_faults(&inst, &PolyPower::CUBE, &mut FixedSpeed(1.0), &plan).unwrap();
        let r = &out.resilience;
        assert_eq!(r.cancelled_jobs, 2);
        assert!((r.cancelled_work - 3.0).abs() < 1e-9);
        let completions = out.schedule.completion_times();
        assert!(completions.contains_key(&0));
        // Only job 0 is delivered; the run ends without waiting for job 2.
        assert!((metrics::makespan(&out.schedule) - 2.0).abs() < 1e-9);
        out.schedule
            .validate(out.effective.as_ref().unwrap(), 1e-6)
            .unwrap();
    }

    #[test]
    fn throttle_clamps_and_lifts() {
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 0.0,
            kind: FaultKind::Throttle {
                duration: 2.0,
                cap: 0.5,
            },
        }])
        .unwrap();
        let out =
            run_online_with_faults(&inst, &PolyPower::CUBE, &mut FixedSpeed(2.0), &plan).unwrap();
        let r = &out.resilience;
        assert!(r.throttle_clamps >= 1, "clamps {}", r.throttle_clamps);
        // [0,2] at cap 0.5 -> 1 work done; remaining 3 at speed 2 -> 1.5.
        let c = out.schedule.completion_times()[&0];
        assert!((c - 3.5).abs() < 1e-9, "completion {c}");
        let lane = out.schedule.machine(0);
        assert!((lane[0].speed - 0.5).abs() < 1e-12);
        assert!((lane.last().unwrap().speed - 2.0).abs() < 1e-12);
        out.schedule
            .validate(out.effective.as_ref().unwrap(), 1e-6)
            .unwrap();
    }

    #[test]
    fn bursts_inject_fresh_jobs() {
        let inst = Instance::from_pairs(&[(0.0, 1.0)]).unwrap();
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 2.0,
            kind: FaultKind::ArrivalBurst {
                jobs: vec![
                    BurstJob {
                        offset: 0.0,
                        work: 1.0,
                    },
                    BurstJob {
                        offset: 0.5,
                        work: 2.0,
                    },
                ],
            },
        }])
        .unwrap();
        let out =
            run_online_with_faults(&inst, &PolyPower::CUBE, &mut FixedSpeed(1.0), &plan).unwrap();
        assert_eq!(out.resilience.burst_jobs, 2);
        assert_eq!(out.schedule.completion_times().len(), 3);
        let eff = out.effective.as_ref().unwrap();
        assert_eq!(eff.len(), 3);
        out.schedule.validate(eff, 1e-6).unwrap();
    }

    #[test]
    fn slo_counts_deadline_misses() {
        let inst = Instance::from_pairs(&[(0.0, 1.0), (0.0, 1.0)]).unwrap();
        // FIFO at speed 1: flows are 1 and 2. SLO 1.5 -> one miss.
        let plan = FaultPlan::none().with_slo(1.5);
        let out =
            run_online_with_faults(&inst, &PolyPower::CUBE, &mut FixedSpeed(1.0), &plan).unwrap();
        assert_eq!(out.resilience.deadline_misses, Some(1));
    }

    #[test]
    fn policies_hear_fault_notices() {
        #[derive(Default)]
        struct Listening {
            crashed: usize,
            recovered: usize,
            throttled: usize,
            lifted: usize,
            cancelled: usize,
        }
        impl OnlinePolicy for Listening {
            fn decide(&mut self, _: f64, r: &dyn ReadyView, _: f64) -> Option<Decision> {
                r.first().map(|p| Decision {
                    job: p.id,
                    speed: 1.0,
                    recheck_after: None,
                })
            }
            fn notify(&mut self, notice: &FaultNotice) {
                match notice {
                    FaultNotice::Crashed { .. } => self.crashed += 1,
                    FaultNotice::Recovered { .. } => self.recovered += 1,
                    FaultNotice::Throttled { .. } => self.throttled += 1,
                    FaultNotice::ThrottleLifted { .. } => self.lifted += 1,
                    FaultNotice::JobCancelled { .. } => self.cancelled += 1,
                }
            }
        }
        let inst = Instance::from_pairs(&[(0.0, 3.0), (0.0, 2.0)]).unwrap();
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 0.5,
                kind: FaultKind::Crash {
                    duration: 0.5,
                    semantics: CrashSemantics::Checkpointed,
                },
            },
            FaultEvent {
                at: 1.5,
                kind: FaultKind::Throttle {
                    duration: 0.5,
                    cap: 0.25,
                },
            },
            FaultEvent {
                at: 2.5,
                kind: FaultKind::CancelJob { job: 1 },
            },
        ])
        .unwrap();
        let mut policy = Listening::default();
        run_online_with_faults(&inst, &PolyPower::CUBE, &mut policy, &plan).unwrap();
        assert_eq!(policy.crashed, 1);
        assert_eq!(policy.recovered, 1);
        assert_eq!(policy.throttled, 1);
        assert!(policy.lifted >= 1);
        assert_eq!(policy.cancelled, 1);
    }

    #[test]
    fn seeded_plans_replay_identically() {
        let inst = Instance::from_pairs(&[(0.0, 2.0), (1.0, 2.0), (2.0, 2.0)]).unwrap();
        let ids: Vec<u32> = inst.jobs().iter().map(|j| j.id).collect();
        let plan = FaultModel::uniform_mix(0.8).sample(8.0, &ids, 42);
        let a =
            run_online_with_faults(&inst, &PolyPower::CUBE, &mut FixedSpeed(1.5), &plan).unwrap();
        let b =
            run_online_with_faults(&inst, &PolyPower::CUBE, &mut FixedSpeed(1.5), &plan).unwrap();
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(
            a.schedule.completion_times().len(),
            b.schedule.completion_times().len()
        );
    }

    #[test]
    fn sim_error_source_chain() {
        #[derive(Debug)]
        struct Root;
        impl std::fmt::Display for Root {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "root cause")
            }
        }
        impl std::error::Error for Root {}
        let err = SimError::solver(Root);
        assert!(err.to_string().contains("root cause"));
        let src = std::error::Error::source(&err).expect("source is chained");
        assert_eq!(src.to_string(), "root cause");
        // Equality ignores the unattributable source pointer.
        assert_eq!(err, SimError::solver_message("root cause"));
        assert_ne!(err, SimError::TooManyEvents);
    }
}
