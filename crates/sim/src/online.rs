//! Event-driven online execution engine.
//!
//! The paper's §6 names online power-aware scheduling (where the
//! algorithm learns about each job only at its release) as the most
//! important open direction. This engine provides the experimental
//! harness: it reveals arrivals to an [`OnlinePolicy`] one release time
//! at a time, executes the policy's speed decisions, and assembles the
//! result into a [`Schedule`] that goes through exactly the same
//! validation and metrics as the offline optima — so empirical
//! competitive ratios are apples-to-apples.
//!
//! The engine is single-processor (matching the §6 open problem). It
//! re-consults the policy at every *event*: a job arrival, a job
//! completion, or a policy-requested checkpoint.
//!
//! # Scale
//!
//! Policies see the ready jobs through a [`ReadySet`], which maintains
//! the running aggregates every natural policy needs — backlog, total
//! work seen, first arrival — **incrementally**, and resolves job ids
//! in `O(1)`. A policy whose `decide` uses only those aggregates (all
//! of the §6 policies in `pas-core::online` do) costs `O(1)` per
//! event, so a full run is `O(n)` hash-map operations plus slice
//! assembly — E13 runs at `n` in the tens of thousands. The previous
//! engine re-summed the backlog per decision and resolved ids by
//! linear scan (`O(n)` per event, `O(n²)` per run).

use crate::schedule::Schedule;
use crate::slice::Slice;
use pas_workload::Instance;
use std::collections::{HashMap, VecDeque};

/// A job visible to the policy: static data plus remaining work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingJob {
    /// Job id.
    pub id: u32,
    /// Release time (the moment the policy first saw it).
    pub release: f64,
    /// Total work.
    pub work: f64,
    /// Work still to be done.
    pub remaining: f64,
}

/// The released, unfinished jobs, with incrementally maintained
/// aggregates.
///
/// All accessors are `O(1)` except [`iter`](ReadySet::iter) (linear in
/// the ready count, in no particular order); [`first`](ReadySet::first)
/// is the earliest-released ready job.
#[derive(Debug, Clone, Default)]
pub struct ReadySet {
    /// Dense storage; `slot_of` maps ids to slots (swap-remove keeps it
    /// dense).
    jobs: Vec<PendingJob>,
    slot_of: HashMap<u32, usize>,
    /// Ids in admission (= release) order; the front is always a live
    /// id (pruned on removal), so `first` is `O(1)`.
    queue: VecDeque<u32>,
    backlog: f64,
    seen_work: f64,
    first_arrival: Option<f64>,
}

impl ReadySet {
    /// Number of ready jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job is ready.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The earliest-released ready job.
    pub fn first(&self) -> Option<&PendingJob> {
        let id = self.queue.front()?;
        self.get(*id)
    }

    /// The ready job with this id.
    pub fn get(&self, id: u32) -> Option<&PendingJob> {
        self.slot_of.get(&id).map(|&s| &self.jobs[s])
    }

    /// Iterate over the ready jobs (no particular order).
    pub fn iter(&self) -> impl Iterator<Item = &PendingJob> {
        self.jobs.iter()
    }

    /// Total remaining work over the ready jobs (maintained
    /// incrementally; the policies' hedging denominators).
    pub fn backlog(&self) -> f64 {
        self.backlog
    }

    /// Total work of every job ever released (finished or not).
    pub fn seen_work(&self) -> f64 {
        self.seen_work
    }

    /// Release time of the very first arrival, if any job has arrived.
    pub fn first_arrival(&self) -> Option<f64> {
        self.first_arrival
    }

    fn admit(&mut self, job: PendingJob) {
        self.seen_work += job.work;
        self.first_arrival.get_or_insert(job.release);
        self.backlog += job.remaining;
        self.slot_of.insert(job.id, self.jobs.len());
        self.queue.push_back(job.id);
        self.jobs.push(job);
    }

    /// Record `executed` units of progress on the job in `slot`.
    fn execute(&mut self, slot: usize, executed: f64) {
        self.jobs[slot].remaining -= executed;
        self.backlog -= executed;
    }

    /// Remove the job in `slot` (completion), dropping any residual
    /// remaining from the backlog.
    fn remove(&mut self, slot: usize) {
        let job = self.jobs.swap_remove(slot);
        self.backlog -= job.remaining;
        self.slot_of.remove(&job.id);
        if let Some(moved) = self.jobs.get(slot) {
            self.slot_of.insert(moved.id, slot);
        }
        // Keep the queue front live so `first` stays O(1).
        while let Some(front) = self.queue.front() {
            if self.slot_of.contains_key(front) {
                break;
            }
            self.queue.pop_front();
        }
    }
}

/// A policy's instruction for the time starting now.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Id of the pending job to run (must be in the ready set).
    pub job: u32,
    /// Speed to run it at (must be positive).
    pub speed: f64,
    /// Optional checkpoint: re-consult the policy after this much time
    /// even if nothing arrives or completes. `None` runs until the next
    /// natural event.
    pub recheck_after: Option<f64>,
}

/// An online scheduling policy.
///
/// `decide` is called whenever the world changes (arrival, completion,
/// or requested checkpoint). Returning `None` idles until the next
/// arrival; idling with no future arrivals and unfinished jobs aborts
/// the simulation with [`SimError::PolicyStalled`].
pub trait OnlinePolicy {
    /// Choose what to run now. `ready` holds the released, unfinished
    /// jobs and their running aggregates; `now` is the current time;
    /// `energy_spent` is the cumulative energy the engine has metered so
    /// far (under the engine's power model).
    fn decide(&mut self, now: f64, ready: &ReadySet, energy_spent: f64) -> Option<Decision>;

    /// Name for reports.
    fn name(&self) -> String {
        "online-policy".to_string()
    }
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Policy idled while work remained and no arrivals were pending.
    PolicyStalled {
        /// Time of the stall.
        at: f64,
        /// Number of unfinished jobs.
        unfinished: usize,
    },
    /// Policy chose a job that is not ready.
    UnknownJob {
        /// The offending id.
        job: u32,
        /// Decision time.
        at: f64,
    },
    /// Policy chose a non-positive or non-finite speed.
    InvalidSpeed {
        /// The offending speed.
        speed: f64,
        /// Decision time.
        at: f64,
    },
    /// Event budget exceeded (runaway checkpoint loops).
    TooManyEvents,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::PolicyStalled { at, unfinished } => {
                write!(f, "policy stalled at t={at} with {unfinished} jobs left")
            }
            SimError::UnknownJob { job, at } => {
                write!(f, "policy chose unready job {job} at t={at}")
            }
            SimError::InvalidSpeed { speed, at } => {
                write!(f, "policy chose invalid speed {speed} at t={at}")
            }
            SimError::TooManyEvents => write!(f, "event budget exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of an online run.
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// The executed schedule (single machine).
    pub schedule: Schedule,
    /// Energy spent, metered by the engine under its power model.
    pub energy: f64,
}

/// Execute `policy` on `instance` under `model`, metering energy.
///
/// Events are processed in time order; between events the chosen job runs
/// at the chosen constant speed. The returned schedule is coalesced.
///
/// # Errors
/// [`SimError`] when the policy misbehaves (stalls, picks unknown jobs or
/// invalid speeds) or checkpoint-loops past the event budget.
pub fn run_online<M: pas_power::PowerModel>(
    instance: &Instance,
    model: &M,
    policy: &mut dyn OnlinePolicy,
) -> Result<OnlineOutcome, SimError> {
    // Jobs sorted by release (Instance guarantees it).
    let jobs = instance.jobs();
    let n = jobs.len();
    let mut next_arrival = 0usize; // index into jobs
    let mut ready = ReadySet::default();
    let mut done = 0usize;
    let mut now = jobs[0].release;
    let mut schedule = Schedule::single();
    let mut energy = 0.0;
    // Event budget: generous, proportional to n, to stop checkpoint loops.
    let mut budget = 10_000 * (n + 1);

    // Admit all jobs released at (or before) `now`.
    let admit = |next_arrival: &mut usize, ready: &mut ReadySet, now: f64| {
        while *next_arrival < n && jobs[*next_arrival].release <= now + 1e-12 {
            let j = &jobs[*next_arrival];
            ready.admit(PendingJob {
                id: j.id,
                release: j.release,
                work: j.work,
                remaining: j.work,
            });
            *next_arrival += 1;
        }
    };
    admit(&mut next_arrival, &mut ready, now);

    while done < n {
        budget -= 1;
        if budget == 0 {
            return Err(SimError::TooManyEvents);
        }
        let decision = policy.decide(now, &ready, energy);
        match decision {
            None => {
                // Idle until the next arrival.
                if next_arrival >= n {
                    return Err(SimError::PolicyStalled {
                        at: now,
                        unfinished: n - done,
                    });
                }
                now = now.max(jobs[next_arrival].release);
                admit(&mut next_arrival, &mut ready, now);
            }
            Some(Decision {
                job,
                speed,
                recheck_after,
            }) => {
                if !(speed.is_finite() && speed > 0.0) {
                    return Err(SimError::InvalidSpeed { speed, at: now });
                }
                let Some(&slot) = ready.slot_of.get(&job) else {
                    return Err(SimError::UnknownJob { job, at: now });
                };
                // Run until completion, next arrival, or checkpoint.
                let completion_in = ready.jobs[slot].remaining / speed;
                let arrival_in = if next_arrival < n {
                    jobs[next_arrival].release - now
                } else {
                    f64::INFINITY
                };
                let recheck_in = recheck_after.unwrap_or(f64::INFINITY).max(1e-12);
                let dt = completion_in.min(arrival_in).min(recheck_in);
                if dt > 0.0 {
                    schedule.push(0, Slice::new(job, now, now + dt, speed));
                    energy += model.power(speed) * dt;
                    // Clamp so the backlog accumulator cannot absorb a
                    // negative residual at completion.
                    let executed = (speed * dt).min(ready.jobs[slot].remaining);
                    ready.execute(slot, executed);
                    now += dt;
                }
                if ready.jobs[slot].remaining <= 1e-9 * ready.jobs[slot].work {
                    // Snap any residual into the final slice via coalesce
                    // tolerance; mark complete.
                    ready.remove(slot);
                    done += 1;
                }
                admit(&mut next_arrival, &mut ready, now);
            }
        }
    }
    schedule.coalesce(1e-9);
    Ok(OnlineOutcome { schedule, energy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use pas_power::PolyPower;

    /// Runs everything at a fixed speed, FIFO.
    struct FixedSpeed(f64);

    impl OnlinePolicy for FixedSpeed {
        fn decide(&mut self, _now: f64, ready: &ReadySet, _energy: f64) -> Option<Decision> {
            ready.first().map(|p| Decision {
                job: p.id,
                speed: self.0,
                recheck_after: None,
            })
        }
        fn name(&self) -> String {
            format!("fixed({})", self.0)
        }
    }

    fn paper_instance() -> Instance {
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
    }

    #[test]
    fn fixed_speed_completes_and_validates() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        let out = run_online(&inst, &model, &mut FixedSpeed(2.0)).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        // 8 total work at speed 2, released over [0,6]: the machine is
        // never starved, so makespan = max(release chain).
        let mk = metrics::makespan(&out.schedule);
        assert!(mk >= 4.0 - 1e-9, "makespan {mk}");
        // Energy: 8 work at speed 2 under σ³ -> w·σ² = 32.
        assert!((out.energy - 32.0).abs() < 1e-6, "energy {}", out.energy);
    }

    #[test]
    fn ready_set_aggregates_track_the_run() {
        struct Check {
            max_seen: f64,
        }
        impl OnlinePolicy for Check {
            fn decide(&mut self, _now: f64, ready: &ReadySet, _energy: f64) -> Option<Decision> {
                // Aggregates stay consistent with the job list.
                let listed: f64 = ready.iter().map(|p| p.remaining).sum();
                assert!((ready.backlog() - listed).abs() < 1e-9);
                assert!(ready.seen_work() >= listed - 1e-9);
                assert_eq!(ready.first_arrival(), Some(0.0));
                self.max_seen = self.max_seen.max(ready.seen_work());
                ready.first().map(|p| Decision {
                    job: p.id,
                    speed: 1.0,
                    recheck_after: None,
                })
            }
        }
        let inst = paper_instance();
        let mut policy = Check { max_seen: 0.0 };
        let out = run_online(&inst, &PolyPower::CUBE, &mut policy).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        assert!((policy.max_seen - 8.0).abs() < 1e-9, "{}", policy.max_seen);
    }

    #[test]
    fn slow_speed_creates_no_idle_fast_speed_idles() {
        let inst = paper_instance();
        let model = PolyPower::CUBE;
        // At speed 10 the first job finishes at t=0.5, then idle till 5.
        let out = run_online(&inst, &model, &mut FixedSpeed(10.0)).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        let lane = out.schedule.machine(0);
        assert!(lane.windows(2).any(|p| p[1].start > p[0].end + 1e-9));
    }

    #[test]
    fn stalling_policy_is_reported() {
        struct Lazy;
        impl OnlinePolicy for Lazy {
            fn decide(&mut self, _: f64, _: &ReadySet, _: f64) -> Option<Decision> {
                None
            }
        }
        let inst = paper_instance();
        let err = run_online(&inst, &PolyPower::CUBE, &mut Lazy).unwrap_err();
        assert!(matches!(err, SimError::PolicyStalled { unfinished: 3, .. }));
    }

    #[test]
    fn invalid_decisions_are_reported() {
        struct BadSpeed;
        impl OnlinePolicy for BadSpeed {
            fn decide(&mut self, _: f64, r: &ReadySet, _: f64) -> Option<Decision> {
                r.first().map(|p| Decision {
                    job: p.id,
                    speed: -1.0,
                    recheck_after: None,
                })
            }
        }
        struct WrongJob;
        impl OnlinePolicy for WrongJob {
            fn decide(&mut self, _: f64, _: &ReadySet, _: f64) -> Option<Decision> {
                Some(Decision {
                    job: 999,
                    speed: 1.0,
                    recheck_after: None,
                })
            }
        }
        let inst = paper_instance();
        assert!(matches!(
            run_online(&inst, &PolyPower::CUBE, &mut BadSpeed).unwrap_err(),
            SimError::InvalidSpeed { .. }
        ));
        assert!(matches!(
            run_online(&inst, &PolyPower::CUBE, &mut WrongJob).unwrap_err(),
            SimError::UnknownJob { job: 999, .. }
        ));
    }

    #[test]
    fn checkpoints_allow_speed_ramps() {
        /// Doubles its speed at every checkpoint (exercises recheck).
        struct Ramp {
            speed: f64,
        }
        impl OnlinePolicy for Ramp {
            fn decide(&mut self, _: f64, r: &ReadySet, _: f64) -> Option<Decision> {
                self.speed *= 2.0;
                r.first().map(|p| Decision {
                    job: p.id,
                    speed: self.speed,
                    recheck_after: Some(0.5),
                })
            }
        }
        let inst = Instance::from_pairs(&[(0.0, 4.0)]).unwrap();
        let out = run_online(&inst, &PolyPower::CUBE, &mut Ramp { speed: 0.5 }).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        // Multiple slices at increasing speeds.
        let lane = out.schedule.machine(0);
        assert!(lane.len() >= 2);
        for pair in lane.windows(2) {
            assert!(pair[1].speed > pair[0].speed);
        }
    }

    #[test]
    fn preemption_on_arrival_is_possible() {
        /// Shortest-remaining-work-first at unit speed: arrival of a short
        /// job preempts a long one.
        struct Srpt;
        impl OnlinePolicy for Srpt {
            fn decide(&mut self, _: f64, r: &ReadySet, _: f64) -> Option<Decision> {
                r.iter()
                    .min_by(|a, b| a.remaining.total_cmp(&b.remaining))
                    .map(|p| Decision {
                        job: p.id,
                        speed: 1.0,
                        recheck_after: None,
                    })
            }
        }
        let inst = Instance::from_pairs(&[(0.0, 10.0), (1.0, 1.0)]).unwrap();
        let out = run_online(&inst, &PolyPower::CUBE, &mut Srpt).unwrap();
        out.schedule.validate(&inst, 1e-6).unwrap();
        let completions = out.schedule.completion_times();
        // Short job finishes at 2 (preempts), long at 11.
        assert!((completions[&1] - 2.0).abs() < 1e-9);
        assert!((completions[&0] - 11.0).abs() < 1e-9);
    }
}
