//! A long-running, crash-safe serving layer over the §6 online engine.
//!
//! [`Server`] wraps the step-wise engine behind three robustness
//! mechanisms the one-shot [`run_online_with_faults`] entry point does
//! not have:
//!
//! 1. **Admission control** — arrivals pass through a bounded queue
//!    with deterministic load-shedding ([`AdmissionConfig`] /
//!    [`ShedPolicy`](crate::online::ShedPolicy)); shed decisions are
//!    recorded in the
//!    [`ResilienceReport`](crate::faults::ResilienceReport) and removed
//!    from the effective instance, so the surviving schedule still
//!    validates.
//! 2. **Write-ahead journal + snapshots** — every policy consultation
//!    is journaled before its decision takes effect, and the full
//!    engine state is periodically checkpointed. A killed process
//!    restores via [`Server::restore`] and replays to a
//!    **bit-identical** [`OnlineOutcome`].
//! 3. **Watchdog + circuit breaker** — each live policy consultation
//!    runs under a wall-clock budget ([`WatchdogConfig`]); after
//!    `trip_limit` overruns the breaker opens and the server degrades
//!    to a deterministic earliest-release fallback so a wedged solver
//!    cannot stall the loop. Trips are *journaled*, never re-measured,
//!    which is what keeps wall-clock nondeterminism out of replay.
//!
//! [`run_online_with_faults`]: crate::online::run_online_with_faults

use crate::faults::{FaultNotice, FaultPlan};
use crate::journal::{
    read_records, scenario_digest, DecisionRecord, Journal, JournalError, Record, Snapshot,
    JOURNAL_VERSION,
};
use crate::online::{
    materialize_arrivals, AdmissionConfig, Decision, EngineState, OnlineOutcome, OnlinePolicy,
    ReadyView, SimError,
};
use pas_workload::Instance;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Wall-clock budget for individual policy consultations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Budget for a single `decide` call; longer calls count as trips.
    pub budget: Duration,
    /// Trips before the circuit breaker opens and the server stops
    /// consulting the policy altogether.
    pub trip_limit: u32,
    /// Speed of the deterministic earliest-release fallback used once
    /// the breaker is open.
    pub fallback_speed: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            budget: Duration::from_millis(100),
            trip_limit: 3,
            fallback_speed: 1.0,
        }
    }
}

/// Configuration for a [`Server`]. The default is a plain pass-through:
/// no admission control, no snapshots, no watchdog, no latency capture.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeConfig {
    /// Bounded admission queue and shedding policy (`None` = admit
    /// everything, exactly like the one-shot engine).
    pub admission: Option<AdmissionConfig>,
    /// Checkpoint the full engine state every this many engine steps
    /// (`None` = journal only; restores replay from genesis).
    pub snapshot_every: Option<u64>,
    /// Wall-clock watchdog over policy consultations.
    pub watchdog: Option<WatchdogConfig>,
    /// Record per-decision latencies in [`ServeStats::decide_nanos`]
    /// (for the E24 p99 measurements; costs one `Instant` pair and a
    /// `Vec` push per decision).
    pub record_latency: bool,
}

/// Serving-layer counters, alongside the engine's own
/// [`ResilienceReport`](crate::faults::ResilienceReport).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Engine steps driven (each step is one event-loop iteration).
    pub steps: u64,
    /// Live policy consultations (journaled).
    pub decisions: u64,
    /// Consultations answered from the journal during a restore.
    pub replayed_decisions: u64,
    /// Watchdog budget overruns (live + replayed).
    pub watchdog_trips: u64,
    /// Whether the circuit breaker ended the run open.
    pub breaker_opened: bool,
    /// Snapshots written.
    pub snapshots: u64,
    /// Journal records written by this server (not replayed history).
    pub journal_records: u64,
    /// Per-decision wall-clock latencies in nanoseconds, when
    /// [`ServeConfig::record_latency`] is set.
    pub decide_nanos: Vec<u64>,
}

/// What a completed serving run produced.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// The engine outcome — identical in shape (and, for restored runs,
    /// identical in *bits*) to what the one-shot entry points return.
    pub outcome: OnlineOutcome,
    /// Serving-layer counters.
    pub stats: ServeStats,
}

/// A long-running serving process around the online engine.
///
/// Drive it with [`run`](Server::run) (to completion) or
/// [`run_for`](Server::run_for) (bounded steps — the crash-simulation
/// hook: run partway, drop the server, restore from the journal).
pub struct Server<'a, M> {
    model: &'a M,
    config: ServeConfig,
    engine: EngineState,
    journal: Journal,
    /// Journaled decisions still to be replayed (restore path).
    replay: VecDeque<DecisionRecord>,
    seq: u64,
    wd_trips: u64,
    breaker_open: bool,
    steps: u64,
    steps_since_snapshot: u64,
    decisions: u64,
    replayed: u64,
    snapshots: u64,
    latencies: Vec<u64>,
}

impl<'a, M: pas_power::PowerModel> Server<'a, M> {
    /// Start a fresh serving run: materialize the arrival stream, write
    /// the journal header, and stand up the engine.
    ///
    /// # Errors
    /// [`SimError::EmptyInstance`] for an empty scenario;
    /// [`SimError::Solver`] wrapping a [`JournalError`] if the header
    /// cannot be written.
    pub fn new(
        instance: &Instance,
        model: &'a M,
        plan: &FaultPlan,
        config: ServeConfig,
        mut journal: Journal,
    ) -> Result<Server<'a, M>, SimError> {
        let (arrivals, burst_jobs) = materialize_arrivals(instance, plan);
        let digest = scenario_digest(&arrivals, plan, config.admission.as_ref());
        journal
            .write_header(arrivals.len(), plan.len(), digest)
            .map_err(SimError::solver)?;
        let engine = EngineState::new(arrivals, plan, burst_jobs, config.admission)?;
        Ok(Server {
            model,
            config,
            engine,
            journal,
            replay: VecDeque::new(),
            seq: 0,
            wd_trips: 0,
            breaker_open: false,
            steps: 0,
            steps_since_snapshot: 0,
            decisions: 0,
            replayed: 0,
            snapshots: 0,
            latencies: Vec::new(),
        })
    }

    /// Restore a crashed serving run from its journal contents.
    ///
    /// `prior` is the text of the journal the dead process left behind
    /// (a torn final line is tolerated); `journal` is the sink new
    /// records go to — typically [`Journal::append`] on the same path,
    /// so replayed history stays in place and new decisions extend it.
    ///
    /// The restore base is the last snapshot that captured policy state
    /// which `policy` accepts via
    /// [`load_state`](OnlinePolicy::load_state); otherwise the engine
    /// is rebuilt from genesis. Either way every journaled decision
    /// after the base is *replayed*: the stored decision is applied
    /// verbatim (watchdog trips included), while the policy is still
    /// consulted where the original run consulted it so its internal
    /// state evolves identically. Pass a freshly-constructed `policy` —
    /// the same construction the original run used.
    ///
    /// # Errors
    /// [`SimError::Solver`] wrapping [`JournalError::ScenarioMismatch`]
    /// if the journal belongs to a different scenario (instance, fault
    /// plan, admission config, or format version), or other
    /// [`JournalError`]s for unreadable interior records.
    pub fn restore(
        instance: &Instance,
        model: &'a M,
        plan: &FaultPlan,
        config: ServeConfig,
        prior: &str,
        journal: Journal,
        policy: &mut dyn OnlinePolicy,
    ) -> Result<Server<'a, M>, SimError> {
        let (arrivals, burst_jobs) = materialize_arrivals(instance, plan);
        let digest = scenario_digest(&arrivals, plan, config.admission.as_ref());
        let records = read_records(prior).map_err(SimError::solver)?;
        match records.first() {
            Some(Record::Header {
                version,
                digest: journal_digest,
                ..
            }) => {
                if *version != JOURNAL_VERSION {
                    return Err(SimError::solver(JournalError::ScenarioMismatch {
                        message: format!(
                            "journal format v{version}, this build writes v{JOURNAL_VERSION}"
                        ),
                    }));
                }
                if *journal_digest != digest {
                    return Err(SimError::solver(JournalError::ScenarioMismatch {
                        message: format!(
                            "scenario digest {journal_digest:016x} != expected {digest:016x}"
                        ),
                    }));
                }
            }
            _ => return Err(SimError::solver(JournalError::MissingHeader)),
        }

        // Restore base: the last snapshot whose policy state this
        // policy accepts; genesis otherwise.
        let mut base: Option<&Snapshot> = None;
        for rec in &records {
            if let Record::Snapshot(snap) = rec {
                if let Some(state) = &snap.policy_state {
                    if policy.load_state(state) {
                        base = Some(snap);
                    }
                }
            }
        }
        let (engine, seq, wd_trips, breaker_open) = match base {
            Some(snap) => (
                snap.restore_engine(arrivals, plan, config.admission),
                snap.seq,
                snap.watchdog_trips,
                snap.breaker_open,
            ),
            None => (
                EngineState::new(arrivals, plan, burst_jobs, config.admission)?,
                0,
                0,
                false,
            ),
        };
        let replay: VecDeque<DecisionRecord> = records
            .iter()
            .filter_map(|rec| match rec {
                Record::Decision(d) if d.seq > seq => Some(d.clone()),
                _ => None,
            })
            .collect();
        Ok(Server {
            model,
            config,
            engine,
            journal,
            replay,
            seq,
            wd_trips,
            breaker_open,
            steps: 0,
            steps_since_snapshot: 0,
            decisions: 0,
            replayed: 0,
            snapshots: 0,
            latencies: Vec::new(),
        })
    }

    /// Whether every job has been completed, cancelled, or shed.
    pub fn done(&self) -> bool {
        self.engine.done()
    }

    /// The journal this server writes to.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Journaled decisions not yet replayed (nonzero only mid-restore).
    pub fn pending_replay(&self) -> usize {
        self.replay.len()
    }

    fn step_once(&mut self, policy: &mut dyn OnlinePolicy) -> Result<(), SimError> {
        // Checkpoint between steps, but never while replaying history
        // (those snapshots already exist in the journal).
        if self.replay.is_empty() {
            if let Some(every) = self.config.snapshot_every {
                if self.steps_since_snapshot >= every {
                    let snap = Snapshot::capture(
                        &self.engine,
                        self.seq,
                        self.wd_trips,
                        self.breaker_open,
                        policy.save_state(),
                    );
                    self.journal
                        .write_snapshot(&snap)
                        .map_err(SimError::solver)?;
                    self.snapshots += 1;
                    self.steps_since_snapshot = 0;
                }
            }
        }
        let mut journal_error: Option<JournalError> = None;
        {
            let mut hook = Hook {
                inner: policy,
                journal: &mut self.journal,
                replay: &mut self.replay,
                watchdog: self.config.watchdog.as_ref(),
                record_latency: self.config.record_latency,
                seq: &mut self.seq,
                wd_trips: &mut self.wd_trips,
                breaker_open: &mut self.breaker_open,
                decisions: &mut self.decisions,
                replayed: &mut self.replayed,
                latencies: &mut self.latencies,
                journal_error: &mut journal_error,
            };
            self.engine.step(self.model, &mut hook)?;
        }
        if let Some(e) = journal_error {
            return Err(SimError::solver(e));
        }
        self.steps += 1;
        self.steps_since_snapshot += 1;
        Ok(())
    }

    /// Drive at most `max_steps` engine steps; returns whether the run
    /// is finished. Stopping early and dropping the server is the
    /// crash-simulation hook used by the recovery tests.
    ///
    /// # Errors
    /// As [`run`](Server::run).
    pub fn run_for(
        &mut self,
        policy: &mut dyn OnlinePolicy,
        max_steps: u64,
    ) -> Result<bool, SimError> {
        let mut taken = 0;
        while !self.engine.done() && taken < max_steps {
            self.step_once(policy)?;
            taken += 1;
        }
        Ok(self.engine.done())
    }

    /// Drive the engine to completion and return the outcome.
    ///
    /// # Errors
    /// [`SimError`] on policy misbehaviour (as the one-shot entry
    /// points) or a journal write failure.
    pub fn run(mut self, policy: &mut dyn OnlinePolicy) -> Result<ServeOutcome, SimError> {
        while !self.engine.done() {
            self.step_once(policy)?;
        }
        self.finish()
    }

    /// Finalize a completed run (coalesce the schedule, build the
    /// effective instance, close out the report).
    ///
    /// # Errors
    /// [`SimError`] if the engine cannot finalize.
    pub fn finish(self) -> Result<ServeOutcome, SimError> {
        let outcome = self.engine.finish()?;
        Ok(ServeOutcome {
            outcome,
            stats: ServeStats {
                steps: self.steps,
                decisions: self.decisions,
                replayed_decisions: self.replayed,
                watchdog_trips: self.wd_trips,
                breaker_opened: self.breaker_open,
                snapshots: self.snapshots,
                journal_records: self.journal.records_written(),
                decide_nanos: self.latencies,
            },
        })
    }
}

/// The policy shim the server interposes between engine and policy: it
/// replays journaled decisions, enforces the watchdog, and journals
/// every live decision before the engine applies it.
struct Hook<'h> {
    inner: &'h mut dyn OnlinePolicy,
    journal: &'h mut Journal,
    replay: &'h mut VecDeque<DecisionRecord>,
    watchdog: Option<&'h WatchdogConfig>,
    record_latency: bool,
    seq: &'h mut u64,
    wd_trips: &'h mut u64,
    breaker_open: &'h mut bool,
    decisions: &'h mut u64,
    replayed: &'h mut u64,
    latencies: &'h mut Vec<u64>,
    /// `decide` cannot return an error, so journal failures are stashed
    /// here and surfaced after the engine step returns.
    journal_error: &'h mut Option<JournalError>,
}

impl Hook<'_> {
    fn note_trip(&mut self) {
        *self.wd_trips += 1;
        if let Some(wd) = self.watchdog {
            if *self.wd_trips >= u64::from(wd.trip_limit) {
                *self.breaker_open = true;
            }
        }
    }
}

impl OnlinePolicy for Hook<'_> {
    fn decide(&mut self, now: f64, ready: &dyn ReadyView, energy_spent: f64) -> Option<Decision> {
        *self.seq += 1;

        // Replay path: the journal is authoritative. The wrapped policy
        // is consulted (result discarded) exactly where the original
        // run consulted it, so its internal state evolves identically;
        // watchdog trips are taken from the record, never re-measured.
        if let Some(rec) = self.replay.pop_front() {
            if rec.consulted {
                let _ = self.inner.decide(now, ready, energy_spent);
            }
            if rec.tripped {
                self.note_trip();
            }
            *self.replayed += 1;
            return rec.decision;
        }

        // Live path.
        let decision;
        let consulted;
        let mut tripped = false;
        if *self.breaker_open {
            let fallback_speed = self.watchdog.map_or(1.0, |wd| wd.fallback_speed);
            decision = ready.first().map(|p| Decision {
                job: p.id,
                speed: fallback_speed,
                recheck_after: None,
            });
            consulted = false;
        } else if self.watchdog.is_some() || self.record_latency {
            let start = Instant::now();
            decision = self.inner.decide(now, ready, energy_spent);
            let elapsed = start.elapsed();
            if self.record_latency {
                self.latencies
                    .push(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            }
            if let Some(wd) = self.watchdog {
                if elapsed > wd.budget {
                    tripped = true;
                    self.note_trip();
                }
            }
            consulted = true;
        } else {
            decision = self.inner.decide(now, ready, energy_spent);
            consulted = true;
        }
        *self.decisions += 1;

        let rec = DecisionRecord {
            seq: *self.seq,
            decision,
            consulted,
            tripped,
        };
        if let Err(e) = self.journal.write_decision(&rec) {
            self.journal_error.get_or_insert(e);
        }
        decision
    }

    fn notify(&mut self, notice: &FaultNotice) {
        self.inner.notify(notice);
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

// Re-exported here so the serving API reads as one module.
pub use crate::journal::outcome_digest;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::ShedPolicy;
    use pas_power::PolyPower;
    use pas_workload::Job;

    struct Greedy;

    impl OnlinePolicy for Greedy {
        fn decide(&mut self, _: f64, ready: &dyn ReadyView, _: f64) -> Option<Decision> {
            ready.first().map(|p| Decision {
                job: p.id,
                speed: 1.0,
                recheck_after: None,
            })
        }

        fn save_state(&self) -> Option<Vec<f64>> {
            Some(vec![])
        }

        fn load_state(&mut self, _: &[f64]) -> bool {
            true
        }
    }

    fn instance() -> Instance {
        Instance::new(vec![
            Job::new(0, 0.0, 2.0),
            Job::new(1, 0.5, 1.0),
            Job::new(2, 3.0, 4.0),
            Job::new(3, 3.0, 0.5),
        ])
        .unwrap()
    }

    fn plain_outcome(inst: &Instance) -> OnlineOutcome {
        crate::online::run_online(inst, &PolyPower::CUBE, &mut Greedy).unwrap()
    }

    #[test]
    fn fresh_serve_matches_one_shot_engine() {
        let inst = instance();
        let server = Server::new(
            &inst,
            &PolyPower::CUBE,
            &FaultPlan::none(),
            ServeConfig::default(),
            Journal::memory(),
        )
        .unwrap();
        let served = server.run(&mut Greedy).unwrap();
        let oneshot = plain_outcome(&inst);
        assert_eq!(outcome_digest(&served.outcome), outcome_digest(&oneshot));
        assert!(served.stats.decisions > 0);
        assert_eq!(served.stats.replayed_decisions, 0);
    }

    #[test]
    fn crash_and_restore_is_bit_identical_from_genesis_and_snapshot() {
        let inst = instance();
        let plan = FaultPlan::none();
        let uninterrupted = plain_outcome(&inst);

        for snapshot_every in [None, Some(2)] {
            let config = ServeConfig {
                snapshot_every,
                ..ServeConfig::default()
            };
            for cut in 1..8 {
                let mut server =
                    Server::new(&inst, &PolyPower::CUBE, &plan, config, Journal::memory()).unwrap();
                let finished = server.run_for(&mut Greedy, cut).unwrap();
                if finished {
                    break;
                }
                let prior = server.journal().contents().unwrap().to_string();
                drop(server); // the crash

                let mut policy = Greedy;
                let restored = Server::restore(
                    &inst,
                    &PolyPower::CUBE,
                    &plan,
                    config,
                    &prior,
                    Journal::memory(),
                    &mut policy,
                )
                .unwrap();
                let outcome = restored.run(&mut policy).unwrap();
                assert_eq!(
                    outcome_digest(&outcome.outcome),
                    outcome_digest(&uninterrupted),
                    "cut={cut} snapshot_every={snapshot_every:?}"
                );
            }
        }
    }

    #[test]
    fn restore_rejects_a_different_scenario() {
        let inst = instance();
        let server = Server::new(
            &inst,
            &PolyPower::CUBE,
            &FaultPlan::none(),
            ServeConfig::default(),
            Journal::memory(),
        )
        .unwrap();
        let prior = server.journal().contents().unwrap().to_string();
        let other = Instance::new(vec![Job::new(0, 0.0, 9.0)]).unwrap();
        let err = match Server::restore(
            &other,
            &PolyPower::CUBE,
            &FaultPlan::none(),
            ServeConfig::default(),
            &prior,
            Journal::memory(),
            &mut Greedy,
        ) {
            Err(e) => e,
            Ok(_) => panic!("restore against a different scenario must fail"),
        };
        assert!(err.to_string().contains("digest"));
    }

    #[test]
    fn admission_sheds_are_reported_and_outcome_still_validates() {
        let inst = instance();
        let config = ServeConfig {
            admission: Some(AdmissionConfig {
                capacity: 1,
                shed: ShedPolicy::RejectNewest,
            }),
            ..ServeConfig::default()
        };
        let server = Server::new(
            &inst,
            &PolyPower::CUBE,
            &FaultPlan::none(),
            config,
            Journal::memory(),
        )
        .unwrap();
        let served = server.run(&mut Greedy).unwrap();
        assert!(served.outcome.resilience.shed_jobs > 0);
        let effective = served.outcome.effective.as_ref().unwrap();
        served.outcome.schedule.validate(effective, 1e-6).unwrap();
    }

    /// A policy that wedges (busy-waits past the budget) on its first
    /// consultation, then behaves; the breaker must open and the run
    /// must still complete deterministically.
    struct Wedged {
        calls: u32,
    }

    impl OnlinePolicy for Wedged {
        fn decide(&mut self, _: f64, ready: &dyn ReadyView, _: f64) -> Option<Decision> {
            self.calls += 1;
            let start = Instant::now();
            while start.elapsed() < Duration::from_millis(2) {
                std::hint::spin_loop();
            }
            ready.first().map(|p| Decision {
                job: p.id,
                speed: 2.0,
                recheck_after: None,
            })
        }
    }

    #[test]
    fn watchdog_opens_breaker_and_falls_back() {
        let inst = instance();
        let config = ServeConfig {
            watchdog: Some(WatchdogConfig {
                budget: Duration::from_nanos(1),
                trip_limit: 2,
                fallback_speed: 1.0,
            }),
            ..ServeConfig::default()
        };
        let server = Server::new(
            &inst,
            &PolyPower::CUBE,
            &FaultPlan::none(),
            config,
            Journal::memory(),
        )
        .unwrap();
        let served = server.run(&mut Wedged { calls: 0 }).unwrap();
        assert!(served.stats.watchdog_trips >= 2);
        assert!(served.stats.breaker_opened);
        // All four jobs still completed under the fallback.
        assert!(served.outcome.resilience.is_clean());
    }
}
