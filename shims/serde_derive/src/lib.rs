//! Derive macros for the vendored `serde` shim.
//!
//! Supports exactly the shapes this workspace uses:
//!
//! * plain structs with named fields — serialized as a JSON object with
//!   one entry per field, in declaration order;
//! * the container attribute `#[serde(try_from = "T", into = "T")]` —
//!   serialization converts through `Into<T>` (cloning `self`),
//!   deserialization through `TryFrom<T>`, so invariant-carrying types
//!   re-validate on the way in.
//!
//! Parsing is done directly on the `proc_macro::TokenStream` (no
//! `syn`/`quote` available offline); unsupported shapes panic at compile
//! time with a clear message rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive learned about the annotated struct.
struct StructInfo {
    name: String,
    /// `(field, type)` pairs in declaration order (empty when proxying).
    fields: Vec<(String, String)>,
    /// `try_from = "T"` proxy type, if present.
    try_from: Option<String>,
    /// `into = "T"` proxy type, if present.
    into: Option<String>,
}

/// Pull a `key = "value"` assignment out of a `#[serde(...)]` body.
fn attr_value(body: &str, key: &str) -> Option<String> {
    let idx = body.find(key)?;
    let rest = &body[idx + key.len()..];
    let rest = rest.trim_start().strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Parse the derive input: attributes, struct name, named fields.
fn parse_struct(input: TokenStream) -> StructInfo {
    let mut tokens = input.into_iter().peekable();
    let mut try_from = None;
    let mut into = None;
    let mut name = None;

    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: the next tree is a bracketed group.
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let body = g.stream().to_string();
                    if let Some(rest) = body.strip_prefix("serde") {
                        try_from = try_from.or_else(|| attr_value(rest, "try_from"));
                        into = into.or_else(|| attr_value(rest, "into"));
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde shim derive: expected struct name, got {other:?}"),
                }
                break;
            }
            // Visibility, `pub(crate)` groups, doc attrs already handled.
            _ => {}
        }
    }
    let name = name.expect("serde shim derive: only structs are supported");

    // Find the brace-delimited field list (skipping generics, which this
    // shim does not support).
    let mut fields = Vec::new();
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde shim derive: generic structs are not supported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                fields = parse_fields(g.stream());
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break, // unit struct
            _ => {}
        }
    }

    StructInfo {
        name,
        fields,
        try_from,
        into,
    }
}

/// Parse `vis? name: Type,` items from a brace group's stream.
fn parse_fields(stream: TokenStream) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next(); // the bracketed attribute body
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // Possible `pub(crate)` scope group.
                    if let Some(TokenTree::Group(_)) = tokens.peek() {
                        tokens.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    panic!("serde shim derive: unexpected token {other} in field list")
                }
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Collect the type until a comma at angle-bracket depth zero.
        let mut ty = String::new();
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(tt) => {
                    if let TokenTree::Punct(p) = tt {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            _ => {}
                        }
                    }
                    ty.push_str(&tt.to_string());
                    ty.push(' ');
                    tokens.next();
                }
            }
        }
        fields.push((name, ty.trim().to_string()));
    }
}

/// `#[derive(Serialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let info = parse_struct(input);
    let name = &info.name;
    let body = if let Some(proxy) = &info.into {
        format!(
            "let proxy: {proxy} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&proxy)"
        )
    } else {
        let entries: Vec<String> = info
            .fields
            .iter()
            .map(|(f, _)| {
                format!(
                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                )
            })
            .collect();
        format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — see the crate docs for supported shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let info = parse_struct(input);
    let name = &info.name;
    let body = if let Some(proxy) = &info.try_from {
        format!(
            "let proxy: {proxy} = ::serde::Deserialize::from_value(value)?;\n\
             ::core::convert::TryFrom::try_from(proxy)\n\
                 .map_err(|e| ::serde::Error::custom(&::std::format!(\"{{e}}\")))"
        )
    } else {
        let inits: Vec<String> = info
            .fields
            .iter()
            .map(|(f, _)| format!("{f}: ::serde::field(entries, \"{f}\")?"))
            .collect();
        format!(
            "let entries = value.as_obj().ok_or_else(|| ::serde::Error::custom(\"expected an object\"))?;\n\
             ::core::result::Result::Ok({name} {{ {} }})",
            inits.join(", ")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl parses")
}
