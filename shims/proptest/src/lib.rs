//! Offline stand-in for `proptest`.
//!
//! Provides the macro and strategy surface this workspace uses —
//! `proptest!` with an optional `#![proptest_config(...)]` header,
//! `prop_assert!`/`prop_assert_eq!`, range/tuple (arity 2–6) /
//! `collection::vec` strategies, element-wise `Vec<Strategy>`
//! composition, `prop_map`/`prop_flat_map` — driven by a deterministic
//! seeded generator. Unlike real proptest there is **no shrinking**: a
//! failing case reports its values via the assertion message only. Runs
//! are fully reproducible (fixed seed per test body).

#![deny(missing_docs)]

/// Strategies: typed random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F));

    /// Element-wise composition: a `Vec` of strategies generates a `Vec`
    /// of values, one per inner strategy, in order. Upstream proptest
    /// has the same impl; the fleet determinism proptests use it to
    /// draw one independently-configured value per host from a
    /// runtime-sized strategy list (tuples cap out at a fixed arity).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with sizes in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test execution plumbing: config, RNG, case errors.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test body.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed test case (no shrinking: carries the message only).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Record a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Deterministic RNG driving generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed RNG; every test run sees the same case stream.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9D8A_7B6C_5D4E_3F21,
            }
        }

        /// The raw SplitMix64 state. Captured at the *start* of each
        /// generated case so a failure can be persisted and replayed
        /// exactly (see [`crate::regressions`]).
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuild an RNG at a captured [`state`](TestRng::state):
        /// generates the identical value stream from that point.
        pub fn from_state(state: u64) -> Self {
            TestRng { state }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Failure persistence: the shim's analogue of proptest's
/// `proptest-regressions/` files.
///
/// When a generated case fails, [`proptest!`] appends a
/// `cc <16-hex-rng-state> # note` line to
/// `proptest-regressions/<source-file-stem>.txt` (relative to the test
/// process's working directory — the package root under `cargo test`).
/// On every subsequent run the persisted states are replayed *before*
/// any novel cases, so a once-seen failure keeps failing until the bug
/// is actually fixed — commit the file and the whole team replays it.
/// Lines starting with `#` and blank lines are comments. Set the
/// `PROPTEST_SHIM_REGRESSIONS` environment variable to redirect the
/// directory (used by the shim's own tests to avoid polluting the
/// repository). All IO is best-effort: an unwritable filesystem
/// degrades to the old no-persistence behavior, never to a test error.
pub mod regressions {
    use std::io::Write;
    use std::path::{Path, PathBuf};

    /// The persistence file for a test source file (`file!()` of the
    /// `proptest!` invocation site).
    pub fn regression_path(source_file: &str) -> PathBuf {
        let stem = Path::new(source_file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unknown".to_string());
        let dir = std::env::var_os("PROPTEST_SHIM_REGRESSIONS")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("proptest-regressions"));
        dir.join(format!("{stem}.txt"))
    }

    /// Load persisted RNG states (`cc <16hex>` lines), deduplicated in
    /// file order. Missing or unreadable files yield the empty list.
    pub fn load_persisted(path: &Path) -> Vec<u64> {
        let Ok(contents) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for line in contents.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("cc ") else {
                continue;
            };
            let hex = rest.split(&[' ', '#']).next().unwrap_or("").trim();
            if let Ok(state) = u64::from_str_radix(hex, 16) {
                if !out.contains(&state) {
                    out.push(state);
                }
            }
        }
        out
    }

    /// Append a failing case's RNG state (best-effort; duplicates are
    /// skipped so re-running an unfixed failure doesn't grow the file).
    pub fn persist_failure(path: &Path, state: u64, note: &str) {
        if load_persisted(path).contains(&state) {
            return;
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let fresh = !path.exists();
        let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        else {
            return;
        };
        if fresh {
            let _ = writeln!(
                file,
                "# Seeds for failure cases found by the proptest shim. It is\n\
                 # recommended to check this file in to source control so that\n\
                 # everyone who runs the test benefits from these saved cases."
            );
        }
        let note = note.replace(['\n', '\r'], " ");
        let _ = writeln!(file, "cc {state:016x} # {note}");
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case (`cases` from the optional config header).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let regressions = $crate::regressions::regression_path(::core::file!());
                // One case at a captured RNG state: regenerate the
                // arguments and run the body, converting a panic into
                // a failure so it can be persisted like a prop_assert.
                // `mut` is needed whenever the body captures state
                // mutably, which depends on the expansion site.
                #[allow(unused_mut)]
                let mut run_case = |state: u64| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    let mut rng = $crate::test_runner::TestRng::from_state(state);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || { $body ::core::result::Result::Ok(()) },
                    )) {
                        ::core::result::Result::Ok(outcome) => outcome,
                        ::core::result::Result::Err(panic) => {
                            let msg = panic
                                .downcast_ref::<&str>()
                                .map(|s| ::std::string::ToString::to_string(s))
                                .or_else(|| panic.downcast_ref::<::std::string::String>().cloned())
                                .unwrap_or_else(|| ::std::string::String::from("panicked"));
                            ::core::result::Result::Err(
                                $crate::test_runner::TestCaseError::fail(msg),
                            )
                        }
                    }
                };
                // Replay persisted failures before any novel cases, so
                // a once-seen failure keeps failing until fixed.
                for state in $crate::regressions::load_persisted(&regressions) {
                    if let ::core::result::Result::Err(e) = run_case(state) {
                        ::core::panic!(
                            "proptest persisted case {:016x} (from {}) failed: {}",
                            state,
                            regressions.display(),
                            e,
                        );
                    }
                }
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..cfg.cases {
                    // Capture the case's start state, then advance the
                    // shared stream past its draws so persistence never
                    // perturbs which novel cases run.
                    let state = rng.state();
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        let _ = &$arg;
                    )*
                    if let ::core::result::Result::Err(e) = run_case(state) {
                        $crate::regressions::persist_failure(
                            &regressions,
                            state,
                            &::std::format!("{} case {}/{}", stringify!($name), case + 1, cfg.cases),
                        );
                        ::core::panic!("proptest case {}/{} failed: {}", case + 1, cfg.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body, failing the case (not panicking
/// directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Plain `if !cond` trips clippy::neg_cmp_op_on_partial_ord when
        // the condition is a float comparison; route through a bool
        // binding like upstream proptest does.
        let condition: bool = $cond;
        if !condition {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0..5.0f64, k in 2u32..9) {
            prop_assert!((1.0..5.0).contains(&x));
            prop_assert!((2..9).contains(&k));
        }

        #[test]
        fn narrow_int_ranges_stay_in_bounds(w in 1u8..9, s in 10u16..1000) {
            prop_assert!((1..9).contains(&w));
            prop_assert!((10..1000).contains(&s));
        }

        #[test]
        fn vec_sizes_respect_bounds(xs in vec(0.0..1.0f64, 3..=7)) {
            prop_assert!(xs.len() >= 3 && xs.len() <= 7);
        }

        #[test]
        fn prop_map_applies(y in (0.0..1.0f64).prop_map(|v| v + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }

        #[test]
        fn vec_of_strategies_composes_elementwise(
            vals in vec![0.0..1.0f64, 5.0..6.0, -2.0..-1.0]
        ) {
            prop_assert_eq!(vals.len(), 3);
            prop_assert!((0.0..1.0).contains(&vals[0]));
            prop_assert!((5.0..6.0).contains(&vals[1]));
            prop_assert!((-2.0..-1.0).contains(&vals[2]));
        }

        #[test]
        fn five_and_six_tuples_generate(
            five in (0.0..1.0f64, 1u32..4, 0.0..1.0f64, 2u64..9, 0usize..3),
            six in (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 1u32..2),
        ) {
            prop_assert!((0.0..1.0).contains(&five.0) && (1..4).contains(&five.1));
            prop_assert!((2..9).contains(&five.3) && five.4 < 3);
            prop_assert!(six.5 == 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_compiles(x in 0.0..1.0f64) {
            prop_assert!(x >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_index_and_persist() {
        // Redirect persistence away from the source tree, and clear any
        // file left by a previous run so the failure is a *novel* case
        // (a persisted replay panics with a different message).
        let dir = std::env::temp_dir().join(format!("proptest-shim-test-{}", std::process::id()));
        std::env::set_var("PROPTEST_SHIM_REGRESSIONS", &dir);
        let _ = std::fs::remove_file(dir.join("lib.txt"));
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        let outcome = std::panic::catch_unwind(always_fails);
        // The failing state was persisted for replay before re-raising.
        let persisted = crate::regressions::load_persisted(&dir.join("lib.txt"));
        assert_eq!(persisted.len(), 1, "expected one persisted state");
        assert_eq!(persisted[0], TestRng::deterministic().state());
        std::panic::resume_unwind(outcome.unwrap_err());
    }

    #[test]
    fn persisted_states_round_trip_and_dedupe() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-rt-{}", std::process::id()));
        let path = dir.join("round_trip.txt");
        let _ = std::fs::remove_file(&path);
        assert!(crate::regressions::load_persisted(&path).is_empty());
        crate::regressions::persist_failure(&path, 0xDEAD_BEEF_0000_0001, "first");
        crate::regressions::persist_failure(&path, 0xDEAD_BEEF_0000_0002, "second\nnewline");
        // Duplicate state: skipped, file does not grow.
        crate::regressions::persist_failure(&path, 0xDEAD_BEEF_0000_0001, "again");
        assert_eq!(
            crate::regressions::load_persisted(&path),
            vec![0xDEAD_BEEF_0000_0001, 0xDEAD_BEEF_0000_0002]
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('#'), "header comment expected: {text}");
        assert_eq!(text.matches("cc ").count(), 2);
        assert!(!text.contains("newline\n") || text.contains("second newline"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replaying_a_state_regenerates_the_same_values() {
        let mut a = TestRng::deterministic();
        let _ = a.next_u64();
        let state = a.state();
        let v1 = (0.0..1.0f64).generate(&mut a);
        let mut b = TestRng::from_state(state);
        let v2 = (0.0..1.0f64).generate(&mut b);
        assert_eq!(v1.to_bits(), v2.to_bits());
    }
}
