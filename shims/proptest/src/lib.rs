//! Offline stand-in for `proptest`.
//!
//! Provides the macro and strategy surface this workspace uses —
//! `proptest!` with an optional `#![proptest_config(...)]` header,
//! `prop_assert!`/`prop_assert_eq!`, range/tuple/`collection::vec`
//! strategies, `prop_map`/`prop_flat_map` — driven by a deterministic
//! seeded generator. Unlike real proptest there is **no shrinking**: a
//! failing case reports its values via the assertion message only. Runs
//! are fully reproducible (fixed seed per test body).

#![deny(missing_docs)]

/// Strategies: typed random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u32, u64, usize, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with sizes in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test execution plumbing: config, RNG, case errors.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test body.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed test case (no shrinking: carries the message only).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Record a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Deterministic RNG driving generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed RNG; every test run sees the same case stream.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9D8A_7B6C_5D4E_3F21,
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case (`cases` from the optional config header).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!("proptest case {}/{} failed: {}", case + 1, cfg.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body, failing the case (not panicking
/// directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Plain `if !cond` trips clippy::neg_cmp_op_on_partial_ord when
        // the condition is a float comparison; route through a bool
        // binding like upstream proptest does.
        let condition: bool = $cond;
        if !condition {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0..5.0f64, k in 2u32..9) {
            prop_assert!((1.0..5.0).contains(&x));
            prop_assert!((2..9).contains(&k));
        }

        #[test]
        fn vec_sizes_respect_bounds(xs in vec(0.0..1.0f64, 3..=7)) {
            prop_assert!(xs.len() >= 3 && xs.len() <= 7);
        }

        #[test]
        fn prop_map_applies(y in (0.0..1.0f64).prop_map(|v| v + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }
    }

    proptest! {
        #[test]
        fn default_config_form_compiles(x in 0.0..1.0f64) {
            prop_assert!(x >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        always_fails();
    }
}
