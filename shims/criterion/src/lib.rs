//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this crate implements
//! the benchmark-harness surface the workspace uses —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, [`BenchmarkId`] — with a real but
//! simple measurement loop: each benchmark warms up, then takes
//! `sample_size` wall-clock samples (each batched to at least ~1 ms) and
//! reports the median, minimum, and maximum time per iteration. No
//! statistics beyond that, no HTML reports, no comparison to saved
//! baselines.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&name.into(), 20, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark `f` under a plain name.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// End the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration sample durations, filled by `iter`.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`: warm up briefly, then record `sample_size` samples of
    /// the mean iteration time (batched so each sample spans >= ~1 ms).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup + batch sizing: grow the batch until it costs >= 1 ms.
        let mut batch: u64 = 1;
        let warmup_deadline = Instant::now() + Duration::from_millis(300);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || Instant::now() >= warmup_deadline {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// Format seconds with an adaptive unit, criterion-style.
fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
    );
}

/// Define a benchmark group function from `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups (ignores harness CLI args).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn time_formatting_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with(" s"));
    }
}
