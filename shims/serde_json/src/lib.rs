//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! shim's [`Value`] tree.
//!
//! Numbers round-trip through Rust's shortest-representation `f64`
//! formatting, so `to_string` → `from_str` is lossless for every finite
//! value the workspace serializes.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize `value` to a compact JSON string.
///
/// # Errors
/// [`Error`] if the tree contains a non-finite number (JSON cannot
/// represent it).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parse a JSON string into any [`Deserialize`] type.
///
/// # Errors
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => {
            if !x.is_finite() {
                return Err(Error::custom("JSON cannot represent a non-finite number"));
            }
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Obj(vec![
            (
                "xs".to_string(),
                Value::Arr(vec![Value::Num(1.5), Value::Num(-2.0)]),
            ),
            ("name".to_string(), Value::Str("a\"b\\c\n".to_string())),
            ("flag".to_string(), Value::Bool(true)),
            ("gap".to_string(), Value::Null),
        ]);
        let mut text = String::new();
        write_value(&v, &mut text).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for &x in &[0.1, 1e-300, 123456789.123456, f64::MIN_POSITIVE, -0.0] {
            let text = Value::Num(x).as_num().unwrap().to_string();
            assert_eq!(parse(&text).unwrap(), Value::Num(x));
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.0f64, 2.5, 3.25];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2.5,3.25]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
