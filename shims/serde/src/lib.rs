//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal serialization framework with the same *spelling* as serde
//! (`derive(Serialize, Deserialize)`, container attribute
//! `#[serde(try_from = "T", into = "T")]`) but a much simpler model: data
//! converts to and from an owned JSON-like [`Value`] tree. The companion
//! `serde_json` shim renders and parses that tree as real JSON.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(message: impl std::fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    ///
    /// # Errors
    /// [`Error`] describing the first shape/type mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Look up a required object field and deserialize it (derive helper).
///
/// # Errors
/// [`Error`] if the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_num()
            .ok_or_else(|| Error::custom("expected a number"))
    }
}

macro_rules! impl_int_via_f64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let x = value
                    .as_num()
                    .ok_or_else(|| Error::custom("expected a number"))?;
                if x.fract() != 0.0 || x < <$t>::MIN as f64 || x > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "number {x} is not a valid {}",
                        stringify!($t)
                    )));
                }
                Ok(x as $t)
            }
        }
    )*};
}
impl_int_via_f64!(u8, u16, u32, u64, usize, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected a boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected a string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_arr()
            .ok_or_else(|| Error::custom("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
        assert!(u32::from_value(&Value::Num(-1.0)).is_err());
    }

    #[test]
    fn vec_round_trip() {
        let xs = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn value_is_its_own_codec() {
        let v = Value::Obj(vec![("k".to_string(), Value::Arr(vec![Value::Num(1.0)]))]);
        assert_eq!(Value::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn field_lookup() {
        let obj = vec![("a".to_string(), Value::Num(2.0))];
        assert_eq!(field::<f64>(&obj, "a").unwrap(), 2.0);
        assert!(field::<f64>(&obj, "b").is_err());
    }
}
