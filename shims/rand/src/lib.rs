//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the *small* slice of `rand` 0.8 it actually uses: a seedable
//! deterministic RNG ([`rngs::StdRng`], here SplitMix64), the
//! [`distributions::Uniform`] distribution over `f64` and integer types,
//! and [`Rng::gen_bool`]. Streams are reproducible per seed (which is all
//! the workspace relies on) but do **not** match upstream `rand` output.

#![deny(missing_docs)]
#![deny(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a reproducible RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods layered on [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)` (53 random bits).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// The RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded RNG (SplitMix64 core).
    ///
    /// Passes through every 64-bit state exactly once; more than adequate
    /// statistical quality for workload generation and tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Distributions over sampleable types.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Types with a native uniform sampler.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Sample uniformly from `[low, high)` (`inclusive = false`) or
        /// `[low, high]` (`inclusive = true`).
        fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
    }

    impl SampleUniform for f64 {
        fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
            let u = if inclusive {
                // 53-bit resolution over the closed unit interval.
                (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
            } else {
                rng.gen_f64()
            };
            low + u * (high - low)
        }
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let hi = if inclusive { high } else { high - 1 };
                    let span = (hi - low) as u64 + 1;
                    // Multiply-shift bounded sampling (Lemire); the tiny
                    // residual bias is irrelevant for test workloads.
                    let x = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    low + x as $t
                }
            }
        )*};
    }
    impl_sample_uniform_int!(u64, u32, usize);

    /// Uniform distribution over `[low, high)` or `[low, high]`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over the half-open range `[low, high)`.
        ///
        /// # Panics
        /// If `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over the closed range `[low, high]`.
        ///
        /// # Panics
        /// If `low > high`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            T::sample_uniform(rng, self.low, self.high, self.inclusive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let u = Uniform::new_inclusive(0.0, 1.0);
        let xs: Vec<f64> = (0..8).map(|_| u.sample(&mut a)).collect();
        let ys: Vec<f64> = (0..8).map(|_| u.sample(&mut b)).collect();
        let zs: Vec<f64> = (0..8).map(|_| u.sample(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_f64_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = Uniform::new(2.0, 5.0);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn uniform_f64_mean_is_central() {
        let mut rng = StdRng::seed_from_u64(11);
        let u = Uniform::new_inclusive(0.0, 1.0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| u.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_ints_cover_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let u = Uniform::new_inclusive(1u64, 4u64);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((1..=4).contains(&x));
            seen[x as usize] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
