//! Crash→restore determinism of the serving layer (proptest).
//!
//! The contract under test: a [`Server`] killed after an arbitrary
//! number of engine steps and restored from its journal must finish
//! with an [`OnlineOutcome`](pas_sim::OnlineOutcome) **bit-identical**
//! to the uninterrupted run — same schedule slices, same energy, same
//! `ResilienceReport` — including under active fault plans, admission
//! control, and snapshots. Identity is asserted through
//! [`outcome_digest`], which hashes every f64 by bit pattern.
//!
//! The proptest strategies randomize the workload, the cut point, the
//! snapshot cadence, the fault rate, and the admission gate. The
//! checked-in `proptest-regressions/serve_recovery.txt` corpus is
//! auto-loaded by the proptest stand-in and replayed before any novel
//! cases; the explicit `regression_*` tests additionally pin the
//! scenarios those entries were distilled into, under stable names.

use power_aware_scheduling::online::FlowReplanner;
use power_aware_scheduling::power::PolyPower;
use power_aware_scheduling::sim::online::{AdmissionConfig, ShedPolicy};
use power_aware_scheduling::sim::{
    outcome_digest, FaultModel, FaultPlan, Journal, ServeConfig, Server, WatchdogConfig,
};
use power_aware_scheduling::workload::{generators, strategies, Instance};
use proptest::prelude::*;

fn fresh_policy(budget: f64) -> FlowReplanner {
    FlowReplanner::new(3.0, budget, 32)
}

fn sample_plan(instance: &Instance, rate: f64, seed: u64) -> FaultPlan {
    if rate <= 0.0 {
        return FaultPlan::none();
    }
    // The rates are per unit time; budget the expected event count so a
    // huge-span instance (the t=1e9 flood) cannot blow up the plan.
    let horizon = instance.last_release() + instance.total_work();
    let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
    FaultModel::uniform_mix(rate)
        .with_event_budget(32.0, horizon)
        .sample(horizon, &ids, seed)
}

/// Digest of the uninterrupted serving run.
fn uninterrupted_digest(instance: &Instance, plan: &FaultPlan, config: ServeConfig) -> u64 {
    let model = PolyPower::CUBE;
    let budget = 2.0 * instance.total_work();
    let mut policy = fresh_policy(budget);
    let server = Server::new(instance, &model, plan, config, Journal::memory())
        .expect("fresh serve setup succeeds");
    let served = server.run(&mut policy).expect("uninterrupted run succeeds");
    outcome_digest(&served.outcome)
}

/// Digest after killing the server at `cut` engine steps and restoring
/// from the journal it left behind. Returns the digest and whether the
/// run actually crashed mid-flight (a large `cut` can finish first).
fn crash_restore_digest(
    instance: &Instance,
    plan: &FaultPlan,
    config: ServeConfig,
    cut: u64,
) -> (u64, bool) {
    let model = PolyPower::CUBE;
    let budget = 2.0 * instance.total_work();
    let mut policy = fresh_policy(budget);
    let mut server = Server::new(instance, &model, plan, config, Journal::memory())
        .expect("fresh serve setup succeeds");
    let done = server
        .run_for(&mut policy, cut)
        .expect("partial run succeeds");
    if done {
        let served = server.finish().expect("finish succeeds");
        return (outcome_digest(&served.outcome), false);
    }
    // The "crash": drop the server, keeping only the journal text the
    // dead process flushed.
    let prior = server
        .journal()
        .contents()
        .expect("memory journal exposes contents")
        .to_string();
    drop(server);
    let mut policy = fresh_policy(budget);
    let restored = Server::restore(
        instance,
        &model,
        plan,
        config,
        &prior,
        Journal::memory(),
        &mut policy,
    )
    .expect("restore succeeds");
    let served = restored.run(&mut policy).expect("restored run succeeds");
    (outcome_digest(&served.outcome), true)
}

fn check_cut(instance: &Instance, plan: &FaultPlan, config: ServeConfig, cut: u64) {
    let want = uninterrupted_digest(instance, plan, config);
    let (got, _crashed) = crash_restore_digest(instance, plan, config, cut);
    assert_eq!(
        got, want,
        "crash at step {cut} diverged (snapshot_every {:?})",
        config.snapshot_every
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crash_restore_is_bit_identical(
        instance in strategies::instances(10),
        cut in 1u64..60,
        snapshot_every in 0u64..6,
        fault_rate in 0f64..0.3,
        seed in 0u64..1_000,
    ) {
        let plan = sample_plan(&instance, fault_rate, seed);
        let config = ServeConfig {
            admission: None,
            snapshot_every: (snapshot_every > 0).then_some(snapshot_every),
            watchdog: Some(WatchdogConfig::default()),
            record_latency: false,
        };
        let want = uninterrupted_digest(&instance, &plan, config);
        let (got, _) = crash_restore_digest(&instance, &plan, config, cut);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn crash_restore_holds_under_admission_control(
        instance in strategies::instances(10),
        cut in 1u64..40,
        capacity in 1usize..6,
        evict in 0u32..2,
        seed in 0u64..1_000,
    ) {
        let plan = sample_plan(&instance, 0.15, seed);
        let config = ServeConfig {
            admission: Some(AdmissionConfig {
                capacity,
                shed: if evict == 1 { ShedPolicy::EvictOldest } else { ShedPolicy::RejectNewest },
            }),
            snapshot_every: Some(3),
            watchdog: None,
            record_latency: false,
        };
        let want = uninterrupted_digest(&instance, &plan, config);
        let (got, _) = crash_restore_digest(&instance, &plan, config, cut);
        prop_assert_eq!(got, want);
    }
}

/// Every fixed-seed fault-matrix scenario, every early cut point, both
/// snapshot cadences — the acceptance-criteria sweep in miniature.
#[test]
fn fault_matrix_cuts_are_bit_identical() {
    let scenarios: Vec<(Instance, FaultPlan)> = (0..3u64)
        .map(|seed| {
            let instance = generators::poisson(12, 0.8, (0.5, 1.5), seed);
            let plan = sample_plan(&instance, 0.25, seed.wrapping_mul(0x9e37));
            (instance, plan)
        })
        .collect();
    for (instance, plan) in &scenarios {
        for snapshot_every in [None, Some(2)] {
            let config = ServeConfig {
                admission: None,
                snapshot_every,
                watchdog: Some(WatchdogConfig::default()),
                record_latency: false,
            };
            for cut in 1..=10 {
                check_cut(instance, plan, config, cut);
            }
        }
    }
}

/// A restored run that crashed mid-replay (restore, run a few steps,
/// crash again, restore again) still converges to the same bits.
#[test]
fn double_crash_still_converges() {
    let model = PolyPower::CUBE;
    let instance = generators::poisson(10, 0.8, (0.5, 1.5), 11);
    let plan = sample_plan(&instance, 0.2, 99);
    let config = ServeConfig {
        snapshot_every: Some(2),
        ..ServeConfig::default()
    };
    let budget = 2.0 * instance.total_work();
    let want = uninterrupted_digest(&instance, &plan, config);

    let mut policy = fresh_policy(budget);
    let mut server = Server::new(&instance, &model, &plan, config, Journal::memory()).unwrap();
    assert!(!server.run_for(&mut policy, 3).unwrap());
    let mut prior = server.journal().contents().unwrap().to_string();
    drop(server);

    // First restore appends its new records after the prior history,
    // exactly like `Journal::append` on the same file would.
    let mut policy = fresh_policy(budget);
    let mut server = Server::restore(
        &instance,
        &model,
        &plan,
        config,
        &prior,
        Journal::memory(),
        &mut policy,
    )
    .unwrap();
    if !server.run_for(&mut policy, 4).unwrap() {
        prior.push_str(server.journal().contents().unwrap());
        drop(server);
        let mut policy = fresh_policy(budget);
        server = Server::restore(
            &instance,
            &model,
            &plan,
            config,
            &prior,
            Journal::memory(),
            &mut policy,
        )
        .unwrap();
        let served = server.run(&mut policy).unwrap();
        assert_eq!(outcome_digest(&served.outcome), want);
        return;
    }
    let served = server.finish().unwrap();
    assert_eq!(outcome_digest(&served.outcome), want);
}

/// A torn final journal line (the SIGKILL case) must not break restore.
#[test]
fn torn_tail_restores_cleanly() {
    let instance = generators::poisson(10, 0.8, (0.5, 1.5), 5);
    let plan = FaultPlan::none();
    let config = ServeConfig::default();
    let model = PolyPower::CUBE;
    let budget = 2.0 * instance.total_work();
    let want = uninterrupted_digest(&instance, &plan, config);

    let mut policy = fresh_policy(budget);
    let mut server = Server::new(&instance, &model, &plan, config, Journal::memory()).unwrap();
    assert!(!server.run_for(&mut policy, 5).unwrap());
    let mut prior = server.journal().contents().unwrap().to_string();
    drop(server);
    // Simulate the kill landing mid-write: the final record is torn.
    let keep = prior.trim_end().rfind('\n').unwrap();
    prior.truncate(keep + 1 + (prior.len() - keep - 1) / 2);

    let mut policy = fresh_policy(budget);
    let restored = Server::restore(
        &instance,
        &model,
        &plan,
        config,
        &prior,
        Journal::memory(),
        &mut policy,
    )
    .unwrap();
    let served = restored.run(&mut policy).unwrap();
    assert_eq!(outcome_digest(&served.outcome), want);
}

/// The same-instant-flood edge end-to-end: hundreds of arrivals at the
/// *identical* timestamp t=1e9, pushed through the full serve loop.
/// Nothing may be spuriously dropped (no admission gate is configured),
/// and the ready-store iteration order must be stable: jobs execute in
/// admission order, which for a same-instant flood is id order.
#[test]
fn same_instant_flood_drops_nothing_and_keeps_order() {
    let n = 400;
    let instance = generators::flood(n, 1e9, (0.5, 1.5), 17);
    let plan = FaultPlan::none();
    let config = ServeConfig::default();
    let model = PolyPower::CUBE;
    let budget = 2.0 * instance.total_work();

    let mut policy = fresh_policy(budget);
    let server = Server::new(&instance, &model, &plan, config, Journal::memory()).unwrap();
    let served = server.run(&mut policy).unwrap();

    // Zero spurious drops: every flood job completes, nothing is shed.
    assert_eq!(served.outcome.resilience.shed_jobs, 0);
    assert_eq!(served.outcome.resilience.cancelled_jobs, 0);
    assert_eq!(served.outcome.schedule.completion_times().len(), n);

    // Stable iteration order: first appearance in the executed
    // schedule follows id (= admission) order.
    let mut seen: Vec<u32> = Vec::new();
    for lane in served.outcome.schedule.machines() {
        for slice in lane {
            if !seen.contains(&slice.job) {
                seen.push(slice.job);
            }
        }
    }
    let expected: Vec<u32> = (0..n as u32).collect();
    assert_eq!(seen, expected, "flood execution order must follow ids");

    // And the whole thing is deterministic: a second identical run
    // produces the same bits.
    let mut policy = fresh_policy(budget);
    let server = Server::new(&instance, &model, &plan, config, Journal::memory()).unwrap();
    let again = server.run(&mut policy).unwrap();
    assert_eq!(
        outcome_digest(&again.outcome),
        outcome_digest(&served.outcome)
    );
}

/// Crash→restore through the middle of a same-instant flood: the
/// restored ready arena must preserve the queue order captured by the
/// snapshot, or the digests diverge.
#[test]
fn flood_crash_restore_is_bit_identical() {
    let instance = generators::flood(64, 1e9, (0.5, 1.5), 23);
    let plan = sample_plan(&instance, 0.1, 23);
    for snapshot_every in [None, Some(4)] {
        let config = ServeConfig {
            snapshot_every,
            ..ServeConfig::default()
        };
        for cut in [1, 7, 33] {
            check_cut(&instance, &plan, config, cut);
        }
    }
}

// ---------------------------------------------------------------------
// Named regressions. The checked-in corpus
// (proptest-regressions/serve_recovery.txt) is replayed automatically
// by the proptest stand-in; these tests pin the distilled scenarios
// under stable names so a reappearance is attributable at a glance.
// ---------------------------------------------------------------------

/// Corpus scenario 1: early cut (step 1) before the first decision,
/// genesis replay path.
#[test]
fn regression_cut_before_first_decision() {
    let instance = generators::poisson(8, 0.8, (0.5, 1.5), 42);
    let plan = sample_plan(&instance, 0.2, 42);
    let config = ServeConfig::default();
    check_cut(&instance, &plan, config, 1);
}

/// Corpus scenario 2: cut lands exactly on a snapshot boundary — the
/// restore must resume *from* the snapshot, not double-apply it.
#[test]
fn regression_cut_on_snapshot_boundary() {
    let instance = generators::poisson(10, 0.8, (0.5, 1.5), 7);
    let plan = sample_plan(&instance, 0.25, 7);
    let config = ServeConfig {
        snapshot_every: Some(2),
        ..ServeConfig::default()
    };
    for cut in [2, 4, 6] {
        check_cut(&instance, &plan, config, cut);
    }
}

/// Corpus scenario 3: eviction under a tiny admission queue with
/// partial progress on the victim (wasted energy must replay bitwise).
#[test]
fn regression_evict_with_partial_progress() {
    let instance = generators::bursty(3, 4, 6.0, 0.3, (0.5, 1.5), 13);
    let plan = sample_plan(&instance, 0.2, 13);
    let config = ServeConfig {
        admission: Some(AdmissionConfig {
            capacity: 2,
            shed: ShedPolicy::EvictOldest,
        }),
        snapshot_every: Some(3),
        ..ServeConfig::default()
    };
    for cut in 1..=8 {
        check_cut(&instance, &plan, config, cut);
    }
}

/// Corpus scenario 4: deadline-aware shedding with an SLO plan on top —
/// `deadline_misses` and `shed_work` must survive the round trip.
#[test]
fn regression_deadline_aware_sheds_replay() {
    let instance = generators::poisson(12, 1.5, (0.5, 1.5), 21);
    let plan = sample_plan(&instance, 0.2, 21).with_slo(4.0);
    let config = ServeConfig {
        admission: Some(AdmissionConfig {
            capacity: 4,
            shed: ShedPolicy::DeadlineAware {
                slo: 4.0,
                service_rate: 1.0,
            },
        }),
        snapshot_every: Some(2),
        ..ServeConfig::default()
    };
    for cut in 1..=8 {
        check_cut(&instance, &plan, config, cut);
    }
}

/// The stateful policy restores from the snapshot (not genesis): after
/// a late cut with a snapshot cadence of 1, the restored server should
/// have strictly fewer decisions to replay than the journal holds.
#[test]
fn snapshot_base_shortens_replay() {
    let model = PolyPower::CUBE;
    let instance = generators::poisson(10, 0.8, (0.5, 1.5), 3);
    let plan = FaultPlan::none();
    let config = ServeConfig {
        snapshot_every: Some(1),
        ..ServeConfig::default()
    };
    let budget = 2.0 * instance.total_work();
    let mut policy = fresh_policy(budget);
    let mut server = Server::new(&instance, &model, &plan, config, Journal::memory()).unwrap();
    assert!(!server.run_for(&mut policy, 8).unwrap());
    let prior = server.journal().contents().unwrap().to_string();
    let total_decisions = prior.matches("\"t\":\"dec\"").count();
    drop(server);

    let mut policy = fresh_policy(budget);
    let restored = Server::restore(
        &instance,
        &model,
        &plan,
        config,
        &prior,
        Journal::memory(),
        &mut policy,
    )
    .unwrap();
    assert!(
        restored.pending_replay() < total_decisions,
        "snapshot base should skip already-captured decisions \
         ({} pending of {total_decisions})",
        restored.pending_replay()
    );
    let served = restored.run(&mut policy).unwrap();
    let want = uninterrupted_digest(&instance, &plan, config);
    assert_eq!(outcome_digest(&served.outcome), want);
}
