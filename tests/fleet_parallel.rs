//! Thread-count invariance: the parallel fleet executor is a perf
//! lever, never a semantics lever.
//!
//! The executor's contract is that the worker count is unobservable in
//! every output bit: the fleet digest, each host's `outcome_digest`,
//! and every aggregated f64 bit pattern must match across any worker
//! count — including 1, which runs inline without spawning threads.
//! These properties drive randomized workloads × seeds × dispatch
//! policies through `run_with(workers ∈ {1, 2, 3, 8})` and through
//! replay under the parallel executor, asserting byte/bit equality
//! throughout. Worker counts are drawn with the shim's `u8` range
//! strategy so the pool size itself is fuzzed too.

use power_aware_scheduling::fleet::{
    replay_with, run_with, DispatchPolicy, EnginePower, FleetEvent, FleetEventKind, FleetScenario,
    HostConfig, HostPolicy,
};
use power_aware_scheduling::power::{HostPower, PolyPower};
use power_aware_scheduling::sim::faults::FaultModel;
use power_aware_scheduling::workload::{Instance, Job};
use proptest::prelude::*;

fn hosts(n: u32) -> Vec<HostConfig> {
    (0..n)
        .map(|id| {
            HostConfig::new(
                id,
                HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
            )
        })
        .collect()
}

fn policy_for(idx: u32) -> DispatchPolicy {
    match idx % 3 {
        0 => DispatchPolicy::RoundRobin,
        1 => DispatchPolicy::LeastAssigned,
        _ => DispatchPolicy::WeightedFastest,
    }
}

#[test]
fn worker_count_is_unobservable_in_a_faulty_scenario() {
    let mut hs = hosts(6);
    hs[1].policy = HostPolicy::Qoa {
        allowance: 4.0,
        alpha: 3.0,
        q: 5.0,
    };
    hs[3].policy = HostPolicy::Bkp { factor: 1.5 };
    hs[4].speed_cap = Some(0.75);
    let workload = Instance::new(
        (0..48)
            .map(|i| Job::new(i, f64::from(i % 7) * 0.5, 0.5 + f64::from(i % 5) * 0.4))
            .collect(),
    )
    .unwrap();
    let mut scenario = FleetScenario::new(hs, workload, 60.0, 0xabcd);
    scenario.fault_model = Some(FaultModel::uniform_mix(0.4));
    scenario.slo = Some(30.0);
    scenario.events.push(FleetEvent {
        at: 5.0,
        kind: FleetEventKind::HostFail {
            host: 2,
            duration: 3.0,
        },
    });
    scenario.events.push(FleetEvent {
        at: 40.0,
        kind: FleetEventKind::HostLeave { host: 5 },
    });

    let base = run_with(&scenario, 1).unwrap();
    for workers in [2, 3, 8] {
        let out = run_with(&scenario, workers).unwrap();
        assert_eq!(
            out.digest, base.digest,
            "digest drifted at {workers} workers"
        );
        assert_eq!(out.trace.serialize(), base.trace.serialize());
        assert_eq!(out.hosts.len(), base.hosts.len());
        for (a, b) in base.hosts.iter().zip(&out.hosts) {
            assert_eq!(a.host, b.host, "host-id fold order drifted");
            assert_eq!(a.digest, b.digest, "host {} outcome drifted", a.host);
            assert_eq!(a.static_energy.to_bits(), b.static_energy.to_bits());
            assert_eq!(a.dynamic_energy.to_bits(), b.dynamic_energy.to_bits());
            assert_eq!(a.total_flow.to_bits(), b.total_flow.to_bits());
            assert_eq!(a.sleep_transitions, b.sleep_transitions);
            assert_eq!(a.deadline_misses, b.deadline_misses);
        }
        assert_eq!(out.total_energy().to_bits(), base.total_energy().to_bits());
        assert_eq!(out.makespan.to_bits(), base.makespan.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fleet digests and per-host outcome digests are byte-equal for
    /// every worker count, over random workloads × seeds × dispatch
    /// policies. The worker counts themselves come from the shim's
    /// `u8` range strategy.
    #[test]
    fn digests_are_invariant_across_worker_counts(
        releases in vec![0u32..6; 12],
        works in vec![0.2f64..3.0; 12],
        seed in 0u64..1_000,
        nhosts in 1u32..6,
        policy_idx in 0u32..3,
        extra_workers in 1u8..9,
    ) {
        let jobs: Vec<Job> = releases
            .iter()
            .zip(&works)
            .enumerate()
            .map(|(i, (&r, &w))| Job::new(i as u32, f64::from(r) * 0.5, w))
            .collect();
        let workload = Instance::new(jobs).unwrap();
        let mut scenario = FleetScenario::new(hosts(nhosts), workload, 30.0, seed);
        scenario.dispatch = policy_for(policy_idx);
        scenario.fault_model = Some(FaultModel::uniform_mix(0.2));

        let base = run_with(&scenario, 1).unwrap();
        for workers in [2usize, 3, 8, usize::from(extra_workers)] {
            let out = run_with(&scenario, workers).unwrap();
            prop_assert_eq!(out.digest, base.digest);
            prop_assert_eq!(out.trace.serialize(), base.trace.serialize());
            for (a, b) in base.hosts.iter().zip(&out.hosts) {
                prop_assert_eq!(a.host, b.host);
                prop_assert_eq!(a.digest, b.digest);
                prop_assert_eq!(
                    a.static_energy.to_bits(),
                    b.static_energy.to_bits()
                );
            }
        }
    }

    /// Record → replay stays bit-exact when both sides run on the
    /// parallel executor, at independently-drawn worker counts.
    #[test]
    fn replay_is_bit_exact_under_the_parallel_executor(
        releases in vec![0u32..5; 10],
        works in vec![0.3f64..2.5; 10],
        seed in 0u64..1_000,
        nhosts in 1u32..5,
        run_workers in 1u8..9,
        replay_workers in 1u8..9,
    ) {
        let jobs: Vec<Job> = releases
            .iter()
            .zip(&works)
            .enumerate()
            .map(|(i, (&r, &w))| Job::new(i as u32, f64::from(r) * 0.5, w))
            .collect();
        let workload = Instance::new(jobs).unwrap();
        let mut scenario = FleetScenario::new(hosts(nhosts), workload, 25.0, seed);
        scenario.fault_model = Some(FaultModel::uniform_mix(0.25));

        let live = run_with(&scenario, usize::from(run_workers)).unwrap();
        let replayed =
            replay_with(&scenario, &live.trace, usize::from(replay_workers)).unwrap();
        prop_assert_eq!(live.digest, replayed.digest);
        prop_assert_eq!(live.trace.serialize(), replayed.trace.serialize());
        prop_assert_eq!(
            live.total_energy().to_bits(),
            replayed.total_energy().to_bits()
        );
        for (a, b) in live.hosts.iter().zip(&replayed.hosts) {
            prop_assert_eq!(a.digest, b.digest);
        }
    }
}
