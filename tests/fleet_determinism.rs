//! Fleet determinism: same seed → bit-identical event order and digest.
//!
//! The fleet simulator's determinism contract is the foundation every
//! other fleet test stands on: a run is a pure function of the
//! scenario, including the seed that shuffles same-timestamp event
//! ties. These tests pin:
//!
//! * two runs of the same scenario produce byte-identical serialized
//!   traces and equal fleet digests (tie-heavy scenarios included);
//! * different seeds genuinely shuffle tie groups (the tie-break is
//!   seeded, not insertion order);
//! * replaying a just-recorded trace reproduces the digest;
//! * the above holds across dispatch policies and under background
//!   fault models, property-tested over randomized workloads using the
//!   `Vec`-composition strategies.

use power_aware_scheduling::fleet::{
    replay, run, DispatchPolicy, EnginePower, FleetScenario, HostConfig, HostPolicy,
};
use power_aware_scheduling::power::{HostPower, PolyPower};
use power_aware_scheduling::sim::faults::FaultModel;
use power_aware_scheduling::workload::{Instance, Job};
use proptest::prelude::*;

fn hosts(n: u32) -> Vec<HostConfig> {
    (0..n)
        .map(|id| {
            HostConfig::new(
                id,
                HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
            )
        })
        .collect()
}

/// A tie-heavy workload: every job released at the same instant, so the
/// entire arrival order is decided by seeded tie-breaking.
fn tied_workload(n: usize) -> Instance {
    Instance::new(
        (0..n)
            .map(|i| Job::new(i as u32, 1.0, 1.0 + i as f64 * 0.25))
            .collect(),
    )
    .unwrap()
}

#[test]
fn same_seed_is_bit_identical_under_ties() {
    let scenario = FleetScenario::new(hosts(4), tied_workload(24), 50.0, 0xfeed);
    let a = run(&scenario).unwrap();
    let b = run(&scenario).unwrap();
    assert_eq!(
        a.trace.serialize(),
        b.trace.serialize(),
        "same scenario must record byte-identical traces"
    );
    assert_eq!(a.digest, b.digest);
    for (ha, hb) in a.hosts.iter().zip(&b.hosts) {
        assert_eq!(ha.digest, hb.digest, "host {} digest drifted", ha.host);
        assert_eq!(ha.static_energy.to_bits(), hb.static_energy.to_bits());
    }
}

#[test]
fn different_seeds_shuffle_tie_groups() {
    let base = FleetScenario::new(hosts(4), tied_workload(24), 50.0, 1);
    let mut other = base.clone();
    other.seed = 2;
    let a = run(&base).unwrap();
    let b = run(&other).unwrap();
    assert_ne!(
        a.trace.serialize(),
        b.trace.serialize(),
        "24 tied arrivals under different seeds must pop differently"
    );
    // The shuffle changes round-robin routing, hence the outcome too.
    assert_ne!(a.digest, b.digest);
}

#[test]
fn replay_of_fresh_trace_reproduces_digest_across_policies() {
    for dispatch in [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastAssigned,
        DispatchPolicy::WeightedFastest,
    ] {
        let mut scenario = FleetScenario::new(hosts(3), tied_workload(18), 50.0, 7);
        scenario.dispatch = dispatch;
        scenario.fault_model = Some(FaultModel::uniform_mix(0.3));
        let live = run(&scenario).unwrap();
        let replayed = replay(&scenario, &live.trace).unwrap();
        assert_eq!(
            live.digest, replayed.digest,
            "replay drifted under {dispatch:?}"
        );
        assert_eq!(live.trace.serialize(), replayed.trace.serialize());
    }
}

#[test]
fn qoa_and_bkp_hosts_are_deterministic_too() {
    let mut hs = hosts(2);
    hs[0].policy = HostPolicy::Qoa {
        allowance: 4.0,
        alpha: 3.0,
        q: 5.0,
    };
    hs[1].policy = HostPolicy::Bkp { factor: 1.5 };
    let scenario = FleetScenario::new(hs, tied_workload(12), 50.0, 3);
    let a = run(&scenario).unwrap();
    let b = run(&scenario).unwrap();
    assert_eq!(a.digest, b.digest);
    assert!(a.dynamic_energy > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Determinism over randomized workloads: releases drawn from a
    /// coarse grid (forcing frequent exact ties), works arbitrary. Uses
    /// the shim's `Vec<Strategy>` composition for the per-job draws.
    #[test]
    fn randomized_scenarios_run_and_replay_identically(
        releases in vec![0u32..6; 10],
        works in vec![0.2f64..3.0; 10],
        seed in 0u64..1_000,
        nhosts in 1u32..5,
    ) {
        let jobs: Vec<Job> = releases
            .iter()
            .zip(&works)
            .enumerate()
            .map(|(i, (&r, &w))| Job::new(i as u32, f64::from(r) * 0.5, w))
            .collect();
        let workload = Instance::new(jobs).unwrap();
        let mut scenario = FleetScenario::new(hosts(nhosts), workload, 30.0, seed);
        scenario.fault_model = Some(FaultModel::uniform_mix(0.2));

        let a = run(&scenario).unwrap();
        let b = run(&scenario).unwrap();
        prop_assert_eq!(a.digest, b.digest);
        prop_assert_eq!(a.trace.serialize(), b.trace.serialize());

        let replayed = replay(&scenario, &a.trace).unwrap();
        prop_assert_eq!(a.digest, replayed.digest);
        prop_assert_eq!(
            a.total_energy().to_bits(),
            replayed.total_energy().to_bits()
        );
    }
}
