//! Equivalence oracle for the kinetic-tournament OA engine.
//!
//! `oa()` (kinetic tournament re-planning, `O(log n)` amortized per
//! event) must trace the same schedule as `oa_reference()` (the
//! previous per-event rank sweep, kept apart from the two shared
//! numerical guards its docs describe) on every instance family —
//! uniform random, clustered deadlines (many deadlines packed into
//! tight bands, the family E22 benchmarks), simultaneous releases,
//! and property-based instances. Agreement is checked **per event**: the
//! two speed profiles are compared segment by segment on the merged
//! slice boundaries, so a single divergent re-planning decision anywhere
//! in the trajectory fails the test — total-energy agreement alone could
//! hide compensating errors.

use power_aware_scheduling::deadline::{oa, oa_reference, DeadlineInstance, DeadlineJob};
use power_aware_scheduling::prelude::*;
use power_aware_scheduling::sim::metrics;
use power_aware_scheduling::sim::Schedule;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Relative per-event energy agreement required between the engines.
const ENERGY_TOL: f64 = 1e-9;

/// Energy of `schedule` (single machine) restricted to `[a, b]` under
/// `P = σ³`, walking the slice list.
fn energy_between(schedule: &Schedule, a: f64, b: f64) -> f64 {
    schedule
        .machine(0)
        .iter()
        .map(|s| {
            let overlap = (s.end.min(b) - s.start.max(a)).max(0.0);
            s.speed.powi(3) * overlap
        })
        .sum()
}

fn check_equivalence(inst: &DeadlineInstance, label: &str) {
    let fast = oa(inst).unwrap_or_else(|e| panic!("{label}: kinetic oa failed: {e}"));
    let slow = oa_reference(inst).unwrap_or_else(|e| panic!("{label}: reference oa failed: {e}"));
    inst.validate_schedule(&fast, 1e-6)
        .unwrap_or_else(|e| panic!("{label}: kinetic schedule infeasible: {e}"));
    inst.validate_schedule(&slow, 1e-6)
        .unwrap_or_else(|e| panic!("{label}: reference schedule infeasible: {e}"));

    // Per-event agreement: both engines re-plan at slice boundaries, so
    // comparing energies between consecutive merged boundaries compares
    // every re-planning decision individually.
    let mut bounds: Vec<f64> = fast
        .machine(0)
        .iter()
        .chain(slow.machine(0))
        .flat_map(|s| [s.start, s.end])
        .collect();
    bounds.sort_by(f64::total_cmp);
    bounds.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let total = metrics::energy(&slow, &PolyPower::CUBE);
    for pair in bounds.windows(2) {
        let e_fast = energy_between(&fast, pair[0], pair[1]);
        let e_slow = energy_between(&slow, pair[0], pair[1]);
        assert!(
            (e_fast - e_slow).abs() <= ENERGY_TOL * total.max(1.0),
            "{label}: event [{}, {}] energy {e_fast} vs reference {e_slow}",
            pair[0],
            pair[1]
        );
    }
    // And the totals agree for several power laws.
    for model in [PolyPower::new(2.0), PolyPower::CUBE] {
        let e_fast = metrics::energy(&fast, &model);
        let e_slow = metrics::energy(&slow, &model);
        assert!(
            (e_fast - e_slow).abs() <= ENERGY_TOL * e_slow.max(1.0),
            "{label}: total energy {e_fast} vs reference {e_slow}"
        );
    }
}

/// Clustered deadlines: `clusters` tight bands each holding many
/// distinct deadlines — the adversarial case for the kinetic
/// tournament's certificates (near-ties everywhere, so margins are
/// small and revalidation pressure is maximal). Matches the E22
/// `clustered` bench family in spirit.
fn clustered_deadline_instance(
    n: usize,
    clusters: usize,
    span: f64,
    seed: u64,
) -> DeadlineInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let cluster_of = Uniform::new(0usize, clusters);
    let jitter = Uniform::new_inclusive(0.0, 0.05 * span / clusters as f64);
    let work = Uniform::new_inclusive(0.2, 2.0);
    let release_back = Uniform::new_inclusive(0.5, 4.0);
    let centers: Vec<f64> = (0..clusters)
        .map(|c| span * (c as f64 + 1.0) / clusters as f64)
        .collect();
    let jobs = (0..n)
        .map(|i| {
            let d = centers[cluster_of.sample(&mut rng)] + jitter.sample(&mut rng);
            let r = (d - release_back.sample(&mut rng)).max(0.0);
            DeadlineJob::new(i as u32, r, d, work.sample(&mut rng))
        })
        .collect();
    DeadlineInstance::new(jobs).expect("clustered jobs are valid")
}

#[test]
fn uniform_random_instances_agree() {
    for seed in 0..30 {
        let inst = DeadlineInstance::random(40, 35.0, (0.5, 6.0), (0.2, 3.0), seed);
        check_equivalence(&inst, &format!("uniform seed {seed}"));
    }
}

#[test]
fn clustered_deadline_instances_agree() {
    for seed in 0..15 {
        let inst = clustered_deadline_instance(48, 5, 30.0, seed);
        check_equivalence(&inst, &format!("clustered seed {seed}"));
    }
}

#[test]
fn simultaneous_release_plans_once_like_reference() {
    // Everything known at t = 0: one plan, executed to completion.
    let dense = DeadlineInstance::new(
        (0..16)
            .map(|i| DeadlineJob::new(i, 0.0, 2.0 + f64::from(i), 0.5 + 0.1 * f64::from(i)))
            .collect(),
    )
    .unwrap();
    check_equivalence(&dense, "simultaneous");
}

#[test]
fn staggered_urgent_arrivals_agree() {
    // Late urgent jobs stacked on lazy ones: maximal re-planning churn.
    let inst = DeadlineInstance::new(vec![
        DeadlineJob::new(0, 0.0, 20.0, 2.0),
        DeadlineJob::new(1, 5.0, 7.0, 1.5),
        DeadlineJob::new(2, 6.0, 6.5, 0.3),
        DeadlineJob::new(3, 12.0, 13.0, 1.0),
        DeadlineJob::new(4, 12.5, 19.0, 0.8),
    ])
    .unwrap();
    check_equivalence(&inst, "staggered");
}

#[test]
fn moderately_large_instances_agree() {
    // One bigger point per family so the kinetic path is exercised well
    // past the sizes the unit tests reach (the 20k acceptance point
    // lives in E22 / BENCH_oa.json).
    check_equivalence(
        &DeadlineInstance::random(400, 300.0, (0.5, 8.0), (0.2, 3.0), 7),
        "uniform n=400",
    );
    check_equivalence(
        &clustered_deadline_instance(400, 8, 250.0, 7),
        "clustered n=400",
    );
}

/// Strategy: 1..=14 jobs with random windows and works.
fn deadline_instances() -> impl Strategy<Value = DeadlineInstance> {
    vec((0.0..25.0f64, 0.4..6.0f64, 0.2..2.5f64), 1..=14).prop_map(|rows| {
        DeadlineInstance::new(
            rows.into_iter()
                .enumerate()
                .map(|(i, (r, window, w))| DeadlineJob::new(i as u32, r, r + window, w))
                .collect(),
        )
        .expect("constructed jobs are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kinetic_and_reference_oa_agree(inst in deadline_instances()) {
        check_equivalence(&inst, "proptest instance");
    }
}
