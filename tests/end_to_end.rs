//! Integration tests: whole-pipeline flows across crates.
//!
//! Every test goes generator → algorithm → `Schedule` → independent
//! validation → independent metrics, so a bug in any layer is caught by
//! another layer's accounting.

use power_aware_scheduling::deadline::{avr, oa, yds, DeadlineInstance};
use power_aware_scheduling::discrete::emulate;
use power_aware_scheduling::flow;
use power_aware_scheduling::makespan::{self, dp, moveright};
use power_aware_scheduling::multi;
use power_aware_scheduling::power::{DiscreteSpeeds, ExpPower};
use power_aware_scheduling::prelude::*;
use power_aware_scheduling::workload::generators;

#[test]
fn three_solvers_agree_on_random_instances() {
    let model = PolyPower::new(2.7);
    for seed in 0..12 {
        let instance = generators::uniform(15, 25.0, (0.3, 3.0), seed);
        for &budget in &[2.0, 10.0, 50.0] {
            let a = makespan::laptop(&instance, &model, budget)
                .unwrap()
                .makespan();
            let b = dp::laptop_dp(&instance, &model, budget).unwrap().makespan();
            assert!(
                (a - b).abs() < 1e-6 * a.max(1.0),
                "seed {seed} E={budget}: incmerge {a} vs dp {b}"
            );
            // Server duality cross-check through MoveRight.
            let srv = moveright::server_moveright(&instance, &model, a).unwrap();
            assert!(
                (srv.energy(&model) - budget).abs() < 1e-5 * budget,
                "seed {seed} E={budget}: moveright round trip {}",
                srv.energy(&model)
            );
        }
    }
}

#[test]
fn laptop_schedules_validate_and_account() {
    let model = PolyPower::CUBE;
    for seed in 0..10 {
        let instance = generators::poisson(30, 1.0, (0.2, 2.0), seed);
        let budget = 3.0 * instance.total_work();
        let blocks = makespan::laptop(&instance, &model, budget).unwrap();
        blocks.verify_structure(&instance, 1e-7).unwrap();
        let schedule = blocks.to_schedule(&instance);
        schedule.validate(&instance, 1e-6).unwrap();
        schedule.validate_nonpreemptive(&instance, 1e-6).unwrap();
        let measured = metrics::energy(&schedule, &model);
        assert!(
            (measured - budget).abs() < 1e-6 * budget,
            "seed {seed}: energy {measured} vs budget {budget}"
        );
    }
}

#[test]
fn flow_pipeline_equal_work() {
    for seed in 0..8 {
        let instance = generators::equal_work_poisson(15, 1.5, 1.0, seed);
        let budget = 2.0 * instance.total_work();
        let sol = flow::laptop(&instance, 3.0, budget, 1e-10).unwrap();
        assert!(sol.kkt.max_residual < 1e-6, "seed {seed}");
        let schedule = sol.to_schedule(&instance);
        schedule.validate(&instance, 1e-6).unwrap();
        let measured_flow = metrics::total_flow(&schedule, &instance);
        assert!(
            (measured_flow - sol.total_flow).abs() < 1e-6 * sol.total_flow,
            "seed {seed}: metrics {measured_flow} vs solver {}",
            sol.total_flow
        );
    }
}

#[test]
fn multiprocessor_makespan_beats_uniprocessor() {
    let model = PolyPower::CUBE;
    for seed in 0..6 {
        let raw = generators::poisson(16, 2.0, (1.0, 1.0), seed);
        let releases: Vec<f64> = raw.jobs().iter().map(|j| j.release).collect();
        let instance = Instance::equal_work(&releases, 1.0).unwrap();
        let budget = 2.0 * instance.total_work();
        let uni = multi::makespan::laptop(&instance, &model, 1, budget, 1e-10).unwrap();
        let quad = multi::makespan::laptop(&instance, &model, 4, budget, 1e-10).unwrap();
        assert!(
            quad.makespan <= uni.makespan + 1e-9,
            "seed {seed}: 4 procs {} vs 1 proc {}",
            quad.makespan,
            uni.makespan
        );
        quad.schedule.validate(&instance, 1e-6).unwrap();
    }
}

#[test]
fn multiprocessor_flow_pipeline() {
    for seed in 0..6 {
        let raw = generators::poisson(12, 1.0, (1.0, 1.0), seed);
        let releases: Vec<f64> = raw.jobs().iter().map(|j| j.release).collect();
        let instance = Instance::equal_work(&releases, 1.0).unwrap();
        let budget = 2.5 * instance.total_work();
        let sol = multi::flow::laptop(&instance, 3.0, 3, budget, 1e-10).unwrap();
        sol.schedule.validate(&instance, 1e-6).unwrap();
        let measured = metrics::total_flow(&sol.schedule, &instance);
        assert!(
            (measured - sol.total_flow).abs() < 1e-6 * sol.total_flow.max(1.0),
            "seed {seed}"
        );
    }
}

#[test]
fn deadline_stack_orders_correctly() {
    // YDS <= OA <= α^α·YDS and YDS <= AVR <= 2^{α-1}α^α·YDS, end to end.
    let model = PolyPower::CUBE;
    for seed in 0..8 {
        let instance = DeadlineInstance::random(18, 20.0, (0.5, 6.0), (0.2, 2.0), seed);
        let y = metrics::energy(&yds(&instance).unwrap().schedule, &model);
        let o = metrics::energy(&oa(&instance).unwrap(), &model);
        let a = metrics::energy(&avr(&instance).unwrap(), &model);
        assert!(y <= o + 1e-6, "seed {seed}: YDS {y} vs OA {o}");
        assert!(y <= a + 1e-6, "seed {seed}: YDS {y} vs AVR {a}");
        assert!(o <= 27.0 * y + 1e-6, "seed {seed}: OA ratio {}", o / y);
        assert!(a <= 108.0 * y + 1e-6, "seed {seed}: AVR ratio {}", a / y);
    }
}

#[test]
fn discrete_emulation_pipeline() {
    let model = PolyPower::CUBE;
    for seed in 0..6 {
        let instance = generators::uniform(12, 15.0, (0.5, 2.0), seed);
        let budget = 2.0 * instance.total_work();
        let blocks = makespan::laptop(&instance, &model, budget).unwrap();
        let continuous = blocks.to_schedule(&instance);
        // A ladder generously covering the speed range.
        let max_speed = blocks
            .blocks()
            .iter()
            .map(|b| b.speed)
            .fold(0.0f64, f64::max);
        let ladder = DiscreteSpeeds::uniform(model, 32, max_speed * 1.1);
        let report = emulate(&continuous, &ladder).unwrap();
        assert!(report.timing_exact, "seed {seed}");
        report.schedule.validate(&instance, 1e-6).unwrap();
        assert!(report.overhead >= 1.0 - 1e-12, "seed {seed}");
        assert!(
            report.overhead < 1.05,
            "seed {seed}: overhead {}",
            report.overhead
        );
    }
}

#[test]
fn general_convex_model_full_pipeline() {
    // The wireless model through laptop, server, frontier and discrete.
    let radio = ExpPower::shannon();
    let instance = generators::uniform(10, 10.0, (0.5, 2.0), 3);
    let budget = 8.0 * instance.total_work();
    let blocks = makespan::laptop(&instance, &radio, budget).unwrap();
    blocks.verify_structure(&instance, 1e-7).unwrap();
    let frontier = Frontier::build(&instance, &radio);
    let m1 = frontier.makespan(&radio, budget).unwrap();
    assert!((m1 - blocks.makespan()).abs() < 1e-6);
    let e_back = frontier.energy_for_makespan(&radio, m1).unwrap();
    assert!((e_back - budget).abs() < 1e-5 * budget);
}

#[test]
fn partition_reduction_round_trip() {
    let model = PolyPower::CUBE;
    let values = generators::partition_yes_instance(5, 40, 1);
    let reduction = multi::partition::reduce(&values, &model).unwrap();
    assert_eq!(reduction.instance.len(), values.len());
    // The witness gives a schedule hitting the target exactly.
    let witness = multi::partition::partition_witness(&values).unwrap();
    let half: u64 = witness.iter().map(|&i| values[i]).sum();
    assert_eq!(half as f64, reduction.makespan_target);
    // And the exact solver confirms through the scheduling lens.
    assert!(multi::partition::schedule_decides_partition(&values, 3.0));
}
