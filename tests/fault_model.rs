//! Replay-identity regression tests for per-host fault seeding.
//!
//! Fleet scenarios derive one fault stream per host from a single
//! scenario seed via [`FaultModel::for_host`]. The property the fleet
//! replay machinery leans on is **context independence**: the plan a
//! host draws depends only on `(seed, host_id)` — not on how many other
//! hosts exist, what order they are sampled in, or what any other host
//! drew. These tests pin that, plus basic decorrelation across hosts
//! and seeds.

use power_aware_scheduling::sim::{FaultKind, FaultModel, FaultPlan};

fn plan_for(seed: u64, host: u32) -> FaultPlan {
    FaultModel::uniform_mix(0.4).sample(30.0, &[0, 1, 2, 3], FaultModel::for_host(seed, host))
}

#[test]
fn for_host_is_a_pure_function() {
    for seed in [0u64, 1, 42, u64::MAX] {
        for host in [0u32, 1, 7, 1000, u32::MAX] {
            assert_eq!(
                FaultModel::for_host(seed, host),
                FaultModel::for_host(seed, host)
            );
        }
    }
}

#[test]
fn replay_identity_per_host() {
    // Sampling host 3's plan alone, twice, or interleaved with other
    // hosts' plans must produce the identical plan each time.
    let lone = plan_for(99, 3);
    let mut interleaved = Vec::new();
    for host in 0..8u32 {
        interleaved.push(plan_for(99, host));
    }
    assert_eq!(lone, interleaved[3]);
    // Reverse sampling order: still identical.
    for host in (0..8u32).rev() {
        assert_eq!(plan_for(99, host), interleaved[host as usize]);
    }
}

#[test]
fn hosts_draw_decorrelated_streams() {
    // Adjacent host ids under the same seed must not share event times.
    let a = plan_for(7, 0);
    let b = plan_for(7, 1);
    assert_ne!(a, b, "adjacent hosts drew identical plans");
    let times = |p: &FaultPlan| p.events().iter().map(|e| e.at).collect::<Vec<_>>();
    assert_ne!(times(&a), times(&b));
    // Same host under adjacent seeds likewise.
    let c = plan_for(8, 0);
    assert_ne!(a, c, "adjacent seeds drew identical plans");
}

#[test]
fn seed_zero_host_zero_is_not_degenerate() {
    // The all-zero corner must still mix into a usable stream.
    let mixed = FaultModel::for_host(0, 0);
    assert_ne!(mixed, 0);
    let plan = plan_for(0, 0);
    // With rate 0.4 over horizon 30 the expected event count is 12;
    // an empty plan here would indicate a broken mix.
    assert!(!plan.events().is_empty());
    // Sanity: events are within the horizon and well-formed.
    for e in plan.events() {
        assert!(e.at >= 0.0 && e.at < 30.0);
        if let FaultKind::Throttle { cap, .. } = &e.kind {
            assert!(*cap > 0.0);
        }
    }
}
