//! Resilience integration tests spanning the fault engine and the
//! solver degradation ladder.
//!
//! The proptests fuzz the online engine across the full fault matrix —
//! crash/recover (both semantics), cancellation, throttling, arrival
//! bursts, and the mixed model — on uniform, clustered, and Poisson
//! workloads, asserting the engine never panics, every surviving
//! schedule validates against the reported *effective* instance, and
//! the [`ResilienceReport`](power_aware_scheduling::sim::ResilienceReport)
//! counters stay internally consistent.
//!
//! The budget tests drive `min_norm_assignment_budgeted` on a
//! known-hard quantized-work witness (the `levels ≤ 6` family the B&B
//! PR documented as its adversarial case): a wall budget must come back
//! within roughly twice the requested time with a valid incumbent and a
//! non-negative certified gap, a zero budget must return the seed
//! incumbent immediately, and a huge budget must be bit-identical to
//! the unbudgeted exact path.

use std::time::{Duration, Instant};

use power_aware_scheduling::budget::{Budgeted, SolveBudget};
use power_aware_scheduling::multi::partition::{min_norm_assignment, min_norm_assignment_budgeted};
use power_aware_scheduling::online::{AdaptiveRate, FractionalSpend, SpendAll};
use power_aware_scheduling::power::PolyPower;
use power_aware_scheduling::sim::online::OnlinePolicy;
use power_aware_scheduling::sim::{run_online_with_faults, FaultModel, FaultPlan};
use power_aware_scheduling::workload::{generators, Instance};
use proptest::prelude::*;

/// The three workload families of the fault matrix.
fn workload(kind: usize, n: usize, seed: u64) -> Instance {
    match kind % 3 {
        0 => generators::uniform(n, n as f64 / 2.0, (0.5, 1.5), seed),
        1 => generators::bursty(3, n.div_ceil(3), n as f64 / 3.0, 0.5, (0.5, 1.5), seed),
        _ => generators::poisson(n, 0.8, (0.5, 1.5), seed),
    }
}

fn policy(kind: usize, budget: f64) -> Box<dyn OnlinePolicy> {
    let model = PolyPower::CUBE;
    match kind % 3 {
        0 => Box::new(SpendAll::new(model, budget)),
        1 => Box::new(FractionalSpend::new(model, budget, 0.5)),
        _ => Box::new(AdaptiveRate::new(model, budget, 10.0)),
    }
}

/// A model firing only one fault kind, at the given rate.
fn single_kind_model(kind: usize, rate: f64) -> FaultModel {
    let mut m = FaultModel::calm();
    match kind % 4 {
        0 => m.crash_rate = rate,
        1 => m.cancel_rate = rate,
        2 => m.throttle_rate = rate,
        _ => m.burst_rate = rate,
    }
    m
}

/// Shared outcome checks: validation against the effective instance and
/// internal consistency of the resilience counters.
fn check_outcome(
    instance: &Instance,
    plan: &FaultPlan,
    policy_kind: usize,
) -> Result<(), TestCaseError> {
    let budget = 2.0 * instance.total_work();
    let mut policy = policy(policy_kind, budget);
    let out = run_online_with_faults(instance, &PolyPower::CUBE, policy.as_mut(), plan)
        .expect("faulted run succeeds");
    prop_assert!(out.energy.is_finite() && out.energy >= 0.0);
    if let Some(eff) = out.effective.as_ref() {
        out.schedule
            .validate(eff, 1e-6)
            .expect("schedule validates against the effective instance");
    } else {
        prop_assert!(
            out.schedule.completion_times().is_empty(),
            "no effective instance implies nothing was executed"
        );
    }
    let r = &out.resilience;
    prop_assert!(r.downtime >= 0.0);
    prop_assert!(r.lost_work >= 0.0);
    prop_assert!(r.wasted_energy >= 0.0);
    prop_assert!(r.wasted_energy <= out.energy + 1e-9);
    prop_assert!(r.recovery_latencies.len() <= r.crashes);
    prop_assert!(r.recovery_latencies.iter().all(|&l| l >= 0.0));
    prop_assert!(r.max_recovery_latency() >= 0.0);
    if r.downtime > 0.0 {
        prop_assert!(r.crashes > 0);
    }
    prop_assert!(r.cancelled_jobs <= instance.len());
    if let Some(misses) = r.deadline_misses {
        prop_assert!(misses <= instance.len() + r.burst_jobs);
    }
    // Every base job is delivered unless cancelled and burst jobs all
    // complete; jobs cancelled after partial progress still leave
    // slices, so they may appear in the completion map too.
    let touched = out.schedule.completion_times().len();
    prop_assert!(touched >= instance.len() + r.burst_jobs - r.cancelled_jobs);
    prop_assert!(touched <= instance.len() + r.burst_jobs);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mixed_fault_matrix_never_breaks_the_engine(
        wkind in 0usize..3,
        pkind in 0usize..3,
        n in 4usize..16,
        seed in 0u64..1000,
        rate in 0.05f64..0.6,
    ) {
        let instance = workload(wkind, n, seed);
        let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
        let horizon = instance.last_release() + instance.total_work();
        let plan = FaultModel::uniform_mix(rate)
            .sample(horizon, &ids, seed.wrapping_add(0xfa))
            .with_slo(1.0 + instance.total_work());
        check_outcome(&instance, &plan, pkind)?;
    }

    #[test]
    fn each_fault_kind_in_isolation(
        fkind in 0usize..4,
        wkind in 0usize..3,
        pkind in 0usize..3,
        n in 4usize..12,
        seed in 0u64..1000,
        rate in 0.1f64..0.5,
    ) {
        let instance = workload(wkind, n, seed);
        let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
        let horizon = instance.last_release() + instance.total_work();
        let plan = single_kind_model(fkind, rate).sample(horizon, &ids, seed);
        let budget = 2.0 * instance.total_work();
        let mut p = policy(pkind, budget);
        let out = run_online_with_faults(&instance, &PolyPower::CUBE, p.as_mut(), &plan)
            .expect("faulted run succeeds");
        let r = &out.resilience;
        // Only the selected kind may leave a footprint.
        match fkind % 4 {
            0 => {
                prop_assert!(
                    r.cancelled_jobs == 0 && r.burst_jobs == 0 && r.throttle_clamps == 0
                );
            }
            1 => {
                prop_assert!(
                    r.crashes == 0 && r.burst_jobs == 0 && r.throttle_clamps == 0
                        && r.downtime == 0.0
                );
            }
            2 => {
                prop_assert!(
                    r.crashes == 0 && r.cancelled_jobs == 0 && r.burst_jobs == 0
                        && r.lost_work == 0.0
                );
            }
            _ => {
                prop_assert!(
                    r.crashes == 0 && r.cancelled_jobs == 0 && r.throttle_clamps == 0
                );
            }
        }
        if let Some(eff) = out.effective.as_ref() {
            out.schedule.validate(eff, 1e-6).expect("validates");
        }
    }

    #[test]
    fn seeded_fault_plans_replay_bit_identically(
        wkind in 0usize..3,
        n in 4usize..10,
        seed in 0u64..500,
        rate in 0.1f64..0.5,
    ) {
        let instance = workload(wkind, n, seed);
        let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
        let horizon = instance.last_release() + instance.total_work();
        let model = FaultModel::uniform_mix(rate);
        let a = model.sample(horizon, &ids, seed);
        let b = model.sample(horizon, &ids, seed);
        prop_assert_eq!(a.len(), b.len());
        let budget = 2.0 * instance.total_work();
        let mut p1 = policy(1, budget);
        let mut p2 = policy(1, budget);
        let o1 = run_online_with_faults(&instance, &PolyPower::CUBE, p1.as_mut(), &a).unwrap();
        let o2 = run_online_with_faults(&instance, &PolyPower::CUBE, p2.as_mut(), &b).unwrap();
        prop_assert_eq!(o1.energy.to_bits(), o2.energy.to_bits());
        prop_assert_eq!(o1.resilience, o2.resilience);
    }
}

// ---------------------------------------------------------------------
// Solver degradation ladder: budgeted branch and bound.
// ---------------------------------------------------------------------

/// The quantized-work witness family from the B&B acceptance sweep:
/// `0.5 + (3.0/levels)·(lcg(seed)>>33 mod levels)`. Coarse grids
/// (`levels ≤ 6`) maximize near-ties, the adversarial case for the
/// incremental engine's dominance pruning.
fn quantized_works(n: usize, levels: u64, seed: u64) -> Vec<f64> {
    let step = 3.0 / levels as f64;
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            0.5 + step * ((state >> 33) % levels) as f64
        })
        .collect()
}

/// The realized `L_α`-norm of an assignment.
fn realized_norm(works: &[f64], labels: &[usize], m: usize, alpha: f64) -> f64 {
    let mut loads = vec![0.0f64; m];
    for (w, &l) in works.iter().zip(labels) {
        assert!(l < m, "label out of range");
        loads[l] += w;
    }
    loads.iter().map(|l| l.powf(alpha)).sum()
}

#[test]
fn wall_budget_degrades_within_twice_the_budget() {
    // Hard witness: coarse grid, many jobs — the exact search needs far
    // longer than the 150ms budget.
    let works = quantized_works(40, 4, 7);
    let (m, alpha) = (10, 3.0);
    let budget = SolveBudget {
        wall: Some(Duration::from_millis(150)),
        nodes: None,
    };
    let t0 = Instant::now();
    let out = min_norm_assignment_budgeted(&works, m, alpha, &budget);
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(300),
        "budgeted solve overshot: {elapsed:?} for a 150ms budget"
    );
    match out {
        Budgeted::Degraded(d) => {
            let (labels, norm) = &d.value;
            assert_eq!(labels.len(), works.len());
            let realized = realized_norm(&works, labels, m, alpha);
            assert!(
                (realized - norm).abs() < 1e-6 * norm.max(1.0),
                "incumbent norm {norm} does not match its labels ({realized})"
            );
            assert!(d.bound_gap >= 0.0, "negative certified gap {}", d.bound_gap);
            assert!(
                d.lower_bound <= *norm + 1e-9,
                "lower bound {} above incumbent {norm}",
                d.lower_bound
            );
        }
        Budgeted::Exact(_) => panic!("40-job coarse-grid witness finished exactly in 150ms"),
    }
}

#[test]
fn zero_budget_returns_the_seed_incumbent_immediately() {
    let works = quantized_works(30, 4, 11);
    let (m, alpha) = (8, 3.0);
    let budget = SolveBudget {
        wall: None,
        nodes: Some(0),
    };
    let t0 = Instant::now();
    let out = min_norm_assignment_budgeted(&works, m, alpha, &budget);
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "zero-node budget must return immediately"
    );
    let d = out.degradation().expect("zero budget always degrades");
    assert_eq!(d.nodes, 0);
    let (labels, norm) = &d.value;
    let realized = realized_norm(&works, labels, m, alpha);
    assert!((realized - norm).abs() < 1e-6 * norm.max(1.0));
    assert!(d.bound_gap >= 0.0);
}

#[test]
fn huge_budget_is_bit_identical_to_the_unbudgeted_path() {
    let works = quantized_works(16, 4, 3);
    let (m, alpha) = (4, 3.0);
    let budget = SolveBudget {
        wall: Some(Duration::from_secs(3600)),
        nodes: Some(u64::MAX),
    };
    let budgeted = min_norm_assignment_budgeted(&works, m, alpha, &budget);
    let (labels, norm) = min_norm_assignment(&works, m, alpha);
    match budgeted {
        Budgeted::Exact((blabels, bnorm)) => {
            assert_eq!(blabels, labels);
            assert_eq!(bnorm.to_bits(), norm.to_bits());
        }
        Budgeted::Degraded(_) => panic!("a huge budget must not degrade"),
    }
}

#[test]
fn node_budgets_certify_the_true_optimum() {
    // The certificate must be sound: lower_bound ≤ the true optimum at
    // every budget, and the gap shrinks to zero as the budget grows.
    let works = quantized_works(14, 4, 5);
    let (m, alpha) = (4, 3.0);
    let (_, opt) = min_norm_assignment(&works, m, alpha);
    for nodes in [1u64, 32, 1024, 65_536] {
        let budget = SolveBudget {
            wall: None,
            nodes: Some(nodes),
        };
        match min_norm_assignment_budgeted(&works, m, alpha, &budget) {
            Budgeted::Exact((_, norm)) => {
                assert_eq!(norm.to_bits(), opt.to_bits(), "nodes={nodes}")
            }
            Budgeted::Degraded(d) => {
                assert!(d.nodes <= nodes, "nodes={nodes}");
                assert!(
                    d.lower_bound <= opt + 1e-9 * opt.max(1.0),
                    "unsound certificate at nodes={nodes}: lower {} vs opt {opt}",
                    d.lower_bound
                );
                assert!(d.value.1 + 1e-12 >= opt, "incumbent beat the optimum");
                assert!(d.bound_gap >= 0.0);
            }
        }
    }
}
