//! Equivalence oracle for the block-decomposition flow solver.
//!
//! `solve_for_u()` (forward contact sweep + exact per-segment cascade
//! DP) must agree with `solve_for_u_reference()` (the damped Gauss–
//! Seidel fixed point, kept verbatim) to `1e-9` relative energy *and*
//! flow on every instance family — Poisson arrivals (sparse through
//! saturating rates), clustered releases (bursts of simultaneous jobs,
//! stressing segment resolution), all-simultaneous (one pure-Push
//! block), and well-separated jobs (every block a tail-`u` singleton).
//! The outer laptop searches (`laptop` vs `laptop_reference`) are held
//! to the same agreement, including across the `flow::hardness`
//! boundary-configuration window where the optimal configuration
//! signature changes — the mirror of `yds_equivalence.rs` for the flow
//! stack.

use power_aware_scheduling::flow::hardness;
use power_aware_scheduling::flow::solver::{
    laptop, laptop_reference, solve_for_u, solve_for_u_reference,
};
use power_aware_scheduling::workload::strategies;
use power_aware_scheduling::workload::{generators, Instance};
use proptest::prelude::*;

/// Relative energy/flow agreement required between the two engines.
const TOL: f64 = 1e-9;

fn check_u(inst: &Instance, alpha: f64, u: f64, label: &str) {
    let fast = solve_for_u(inst, alpha, u)
        .unwrap_or_else(|e| panic!("{label} u={u}: block engine failed: {e}"));
    let slow = solve_for_u_reference(inst, alpha, u)
        .unwrap_or_else(|e| panic!("{label} u={u}: reference engine failed: {e}"));
    assert!(
        (fast.energy - slow.energy).abs() <= TOL * slow.energy.max(1e-12),
        "{label} u={u}: energy {} vs {}",
        fast.energy,
        slow.energy
    );
    assert!(
        (fast.total_flow - slow.total_flow).abs() <= TOL * slow.total_flow.max(1e-12),
        "{label} u={u}: flow {} vs {}",
        fast.total_flow,
        slow.total_flow
    );
    // Both profiles independently satisfy Theorem 1.
    assert!(fast.kkt.max_residual < 1e-6, "{label}: block KKT residual");
    assert!(slow.kkt.max_residual < 1e-6, "{label}: ref KKT residual");
}

fn check_laptop(inst: &Instance, alpha: f64, budget: f64, label: &str) {
    let fast = laptop(inst, alpha, budget, 1e-11)
        .unwrap_or_else(|e| panic!("{label} E={budget}: block laptop failed: {e}"));
    let slow = laptop_reference(inst, alpha, budget, 1e-11)
        .unwrap_or_else(|e| panic!("{label} E={budget}: reference laptop failed: {e}"));
    assert!(
        (fast.energy - slow.energy).abs() <= 1e-8 * budget,
        "{label} E={budget}: energy {} vs {}",
        fast.energy,
        slow.energy
    );
    assert!(
        (fast.total_flow - slow.total_flow).abs() <= 1e-7 * slow.total_flow,
        "{label} E={budget}: flow {} vs {}",
        fast.total_flow,
        slow.total_flow
    );
}

/// Clustered releases: bursts of simultaneous jobs separated by small
/// gaps — the adversarial case for segment resolution (many violated
/// boundaries per contact segment).
fn clustered_instance(seed: u64) -> Instance {
    let mut releases = Vec::new();
    let mut t = 0.0;
    for g in 0..7u64 {
        t += 0.25 + 0.2 * ((seed * 13 + g * 7) % 9) as f64;
        for _ in 0..(1 + (seed + g) % 4) {
            releases.push(t);
        }
    }
    Instance::equal_work(&releases, 1.0).expect("valid releases")
}

#[test]
fn poisson_families_agree() {
    for seed in 0..25 {
        for &rate in &[0.4, 1.5, 6.0] {
            let inst = generators::equal_work_poisson(22, rate, 1.0, seed);
            for &u in &[0.2, 1.0, 3.7] {
                check_u(&inst, 3.0, u, &format!("poisson rate {rate} seed {seed}"));
            }
        }
    }
}

#[test]
fn clustered_release_families_agree() {
    for seed in 0..20 {
        let inst = clustered_instance(seed);
        for &u in &[0.3, 1.1, 5.0] {
            check_u(&inst, 3.0, u, &format!("clustered seed {seed}"));
        }
        check_laptop(
            &inst,
            3.0,
            1.7 * inst.total_work(),
            &format!("clustered seed {seed}"),
        );
    }
}

#[test]
fn simultaneous_and_separated_extremes_agree() {
    for n in [1usize, 2, 7, 40] {
        let all_zero = Instance::equal_work(&vec![0.0; n], 1.0).unwrap();
        check_u(&all_zero, 3.0, 1.3, &format!("simultaneous n={n}"));
        let sparse: Vec<f64> = (0..n).map(|i| 40.0 * i as f64).collect();
        let sparse = Instance::equal_work(&sparse, 1.0).unwrap();
        check_u(&sparse, 3.0, 1.3, &format!("separated n={n}"));
    }
}

#[test]
fn alpha_two_agrees() {
    for seed in 0..10 {
        let inst = generators::equal_work_poisson(18, 2.0, 1.0, seed);
        for &u in &[0.5, 2.0] {
            check_u(&inst, 2.0, u, &format!("alpha=2 seed {seed}"));
        }
    }
}

#[test]
fn hardness_window_budgets_agree_across_signature_changes() {
    // Budgets straddling the measured boundary-configuration window
    // [≈10.32, ≈11.54] of the Theorem-8 witness: the optimal signature
    // walks PP → P= → PG, and the engines must agree in all three
    // regimes and near both configuration-change energies.
    let inst = hardness::witness_instance();
    let (lo, hi) = hardness::measured_boundary_window();
    for budget in [
        5.0,
        9.0,
        lo - 1e-3,
        lo + 1e-3,
        11.0,
        hi - 1e-3,
        hi + 1e-3,
        20.0,
    ] {
        check_laptop(&inst, 3.0, budget, "hardness witness");
    }
    // The signatures really do change across the window.
    let sig = |e: f64| laptop(&inst, 3.0, e, 1e-11).unwrap().kkt.signature();
    assert_eq!(sig(9.0), "PP");
    assert_eq!(sig(11.0), "P=");
    assert_eq!(sig(20.0), "PG");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_equal_work_instances_agree(
        instance in strategies::equal_work_instances(16),
        u in 0.05f64..8.0,
    ) {
        let fast = solve_for_u(&instance, 3.0, u).unwrap();
        let slow = solve_for_u_reference(&instance, 3.0, u).unwrap();
        prop_assert!(
            (fast.energy - slow.energy).abs() <= TOL * slow.energy.max(1e-12),
            "energy {} vs {}", fast.energy, slow.energy
        );
        prop_assert!(
            (fast.total_flow - slow.total_flow).abs() <= TOL * slow.total_flow.max(1e-12),
            "flow {} vs {}", fast.total_flow, slow.total_flow
        );
    }

    #[test]
    fn arbitrary_laptop_budgets_agree(
        instance in strategies::equal_work_instances(12),
        scale in 0.4f64..4.0,
    ) {
        let budget = scale * instance.total_work();
        let fast = laptop(&instance, 3.0, budget, 1e-11).unwrap();
        let slow = laptop_reference(&instance, 3.0, budget, 1e-11).unwrap();
        prop_assert!((fast.energy - slow.energy).abs() <= 1e-8 * budget);
        prop_assert!(
            (fast.total_flow - slow.total_flow).abs() <= 1e-7 * slow.total_flow,
            "flow {} vs {}", fast.total_flow, slow.total_flow
        );
    }
}
