//! Integration tests: the paper's Figures 1–3, through the public API.
//!
//! These are the workspace's acceptance tests for experiment E1–E3 (see
//! EXPERIMENTS.md): every number is checked against the closed forms
//! derived by hand in DESIGN.md §5 for the instance
//! `r = [0, 5, 6]`, `w = [5, 2, 1]`, `power = speed³`.

use power_aware_scheduling::prelude::*;

fn paper_instance() -> Instance {
    Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap()
}

/// The hand-derived closed form for M(E), piecewise by configuration.
fn oracle_makespan(e: f64) -> f64 {
    if e >= 17.0 {
        6.0 + (e - 13.0).powf(-0.5)
    } else if e >= 8.0 {
        5.0 + 3.0 * 3f64.sqrt() * (e - 5.0).powf(-0.5)
    } else {
        8f64.powf(1.5) * e.powf(-0.5)
    }
}

#[test]
fn figure1_curve_matches_oracle_everywhere() {
    let instance = paper_instance();
    let model = PolyPower::CUBE;
    let frontier = Frontier::build(&instance, &model);
    for k in 0..=600 {
        let e = 6.0 + 15.0 * k as f64 / 600.0;
        let got = frontier.makespan(&model, e).unwrap();
        let want = oracle_makespan(e);
        assert!(
            (got - want).abs() < 1e-9,
            "E={e}: frontier {got} vs oracle {want}"
        );
        // And IncMerge agrees with the frontier.
        let im = makespan::laptop(&instance, &model, e).unwrap().makespan();
        assert!((im - want).abs() < 1e-9, "E={e}: incmerge {im}");
    }
}

#[test]
fn figure1_breakpoints_exact() {
    let frontier = Frontier::build(&paper_instance(), &PolyPower::CUBE);
    let bp = frontier.breakpoints();
    assert_eq!(bp.len(), 2);
    assert!(
        (bp[0] - 17.0).abs() < 1e-9,
        "paper: configuration change at 17"
    );
    assert!(
        (bp[1] - 8.0).abs() < 1e-9,
        "paper: configuration change at 8"
    );
}

#[test]
fn figure2_derivative_series() {
    // dM/dE is continuous, negative, increasing toward 0.
    let model = PolyPower::CUBE;
    let frontier = Frontier::build(&paper_instance(), &model);
    let mut prev = f64::NEG_INFINITY;
    for k in 0..=300 {
        let e = 6.0 + 15.0 * k as f64 / 300.0;
        let d = frontier.makespan_derivative(&model, e).unwrap();
        assert!(d < 0.0, "E={e}: derivative {d} not negative");
        assert!(d >= prev - 1e-12, "E={e}: derivative decreased");
        prev = d;
    }
    // Exact values at the breakpoints (C¹ continuity).
    assert!((frontier.makespan_derivative(&model, 8.0).unwrap() + 0.5).abs() < 1e-9);
    assert!((frontier.makespan_derivative(&model, 17.0).unwrap() + 1.0 / 16.0).abs() < 1e-9);
}

#[test]
fn figure3_second_derivative_jumps() {
    let model = PolyPower::CUBE;
    let frontier = Frontier::build(&paper_instance(), &model);
    let h = 1e-9;
    let cases = [
        // (energy, left value, right value)
        (8.0, 3.0 / 32.0, 0.25),
        (
            17.0,
            9.0 * 3f64.sqrt() / (4.0 * 12f64.powf(2.5)),
            3.0 / 128.0,
        ),
    ];
    for (e, left, right) in cases {
        let l = frontier.makespan_second_derivative(&model, e - h).unwrap();
        let r = frontier.makespan_second_derivative(&model, e + h).unwrap();
        assert!((l - left).abs() < 1e-6, "E={e}-: {l} vs {left}");
        assert!((r - right).abs() < 1e-6, "E={e}+: {r} vs {right}");
        assert!((l - r).abs() > 1e-3, "no jump at {e}");
    }
}

#[test]
fn figure1_axis_range_endpoints() {
    // The figure's x-axis spans [6, 21]: M(6) ≈ 9.2376 (tick 9.25 on the
    // paper's axis), M(21) ≈ 6.3536.
    let model = PolyPower::CUBE;
    let frontier = Frontier::build(&paper_instance(), &model);
    assert!((frontier.makespan(&model, 6.0).unwrap() - 9.237_604_307).abs() < 1e-6);
    assert!((frontier.makespan(&model, 21.0).unwrap() - 6.353_553_391).abs() < 1e-6);
}

#[test]
fn energy_makespan_curve_is_convex_decreasing() {
    // Non-dominated frontier of a convex bicriteria problem: M(E)
    // strictly decreasing and convex over the sampled range.
    let model = PolyPower::CUBE;
    let frontier = Frontier::build(&paper_instance(), &model);
    let samples: Vec<(f64, f64)> = (0..=150)
        .map(|k| {
            let e = 6.0 + 0.1 * k as f64;
            (e, frontier.makespan(&model, e).unwrap())
        })
        .collect();
    for w in samples.windows(2) {
        assert!(w[1].1 < w[0].1, "not decreasing at E={}", w[1].0);
    }
    for w in samples.windows(3) {
        let mid = 0.5 * (w[0].1 + w[2].1);
        assert!(w[1].1 <= mid + 1e-12, "not convex at E={}", w[1].0);
    }
}
