//! Equivalence oracle for the optimized YDS timeline engine.
//!
//! `yds()` (prefix-sum sweep + interval set + heap EDF) must produce the
//! same optimal energy as `yds_reference()` (the seed `O(n⁴)`
//! implementation, kept verbatim) on every instance family — uniform
//! random, clustered releases (many jobs sharing exact release times,
//! stressing coordinate compression), and nested windows (maximally many
//! YDS rounds, stressing the blocked-interval bookkeeping). Both
//! schedules must also independently satisfy every deadline.

use power_aware_scheduling::deadline::{yds, yds_reference, DeadlineInstance, DeadlineJob};
use power_aware_scheduling::prelude::*;
use power_aware_scheduling::sim::metrics;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Relative energy agreement required between the two engines.
const ENERGY_TOL: f64 = 1e-9;

fn check_equivalence(inst: &DeadlineInstance, label: &str) {
    let fast = yds(inst).unwrap_or_else(|e| panic!("{label}: optimized yds failed: {e}"));
    let slow = yds_reference(inst).unwrap_or_else(|e| panic!("{label}: reference yds failed: {e}"));
    inst.validate_schedule(&fast.schedule, 1e-6)
        .unwrap_or_else(|e| panic!("{label}: optimized schedule infeasible: {e}"));
    inst.validate_schedule(&slow.schedule, 1e-6)
        .unwrap_or_else(|e| panic!("{label}: reference schedule infeasible: {e}"));
    for model in [PolyPower::new(2.0), PolyPower::CUBE] {
        let e_fast = metrics::energy(&fast.schedule, &model);
        let e_slow = metrics::energy(&slow.schedule, &model);
        assert!(
            (e_fast - e_slow).abs() <= ENERGY_TOL * e_slow.max(1.0),
            "{label}: optimized energy {e_fast} vs reference {e_slow}"
        );
    }
    // Both run the YDS loop, so round densities are non-increasing and
    // the first (peak) densities agree.
    for pair in fast.rounds.windows(2) {
        assert!(
            pair[0].density >= pair[1].density - 1e-9,
            "{label}: optimized densities increased"
        );
    }
    let d_fast = fast.rounds[0].density;
    let d_slow = slow.rounds[0].density;
    assert!(
        (d_fast - d_slow).abs() <= 1e-9 * d_slow.max(1.0),
        "{label}: peak density {d_fast} vs {d_slow}"
    );
}

/// Clustered releases: `clusters` groups of jobs sharing *exactly* the
/// same release time — the adversarial case for coordinate compression
/// (ties everywhere) and for the reference's `O(n)` containment filter.
fn clustered_instance(n: usize, clusters: usize, span: f64, seed: u64) -> DeadlineInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let cluster_of = Uniform::new(0usize, clusters);
    let window = Uniform::new_inclusive(0.4, 5.0);
    let work = Uniform::new_inclusive(0.2, 2.5);
    let starts: Vec<f64> = (0..clusters)
        .map(|c| c as f64 * span / clusters as f64)
        .collect();
    let jobs = (0..n)
        .map(|i| {
            let r = starts[cluster_of.sample(&mut rng)];
            DeadlineJob::new(
                i as u32,
                r,
                r + window.sample(&mut rng),
                work.sample(&mut rng),
            )
        })
        .collect();
    DeadlineInstance::new(jobs).expect("clustered jobs are valid")
}

/// Nested windows: job `i`'s window strictly contains job `i+1`'s, so
/// every job can land in its own YDS round — the maximal-round-count
/// stress for the blocked-interval set.
fn nested_instance(n: usize, seed: u64) -> DeadlineInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let shrink = Uniform::new_inclusive(0.05, 0.45);
    let work = Uniform::new_inclusive(0.1, 1.0);
    let mut lo = 0.0f64;
    let mut hi = 4.0 * n as f64;
    let jobs = (0..n)
        .map(|i| {
            let job = DeadlineJob::new(i as u32, lo, hi, work.sample(&mut rng));
            let width = hi - lo;
            lo += shrink.sample(&mut rng) * width;
            hi -= shrink.sample(&mut rng) * width;
            job
        })
        .collect();
    DeadlineInstance::new(jobs).expect("nested jobs are valid")
}

#[test]
fn uniform_random_instances_agree() {
    for seed in 0..30 {
        let inst = DeadlineInstance::random(24, 22.0, (0.5, 6.0), (0.2, 3.0), seed);
        check_equivalence(&inst, &format!("uniform seed {seed}"));
    }
}

#[test]
fn clustered_release_instances_agree() {
    for seed in 0..15 {
        let inst = clustered_instance(30, 4, 25.0, seed);
        check_equivalence(&inst, &format!("clustered seed {seed}"));
    }
}

#[test]
fn nested_window_instances_agree() {
    for seed in 0..10 {
        let inst = nested_instance(16, seed);
        check_equivalence(&inst, &format!("nested seed {seed}"));
    }
}

#[test]
fn sparse_and_dense_extremes_agree() {
    // Widely separated jobs (every round trivial) and one shared window
    // (a single round) — the two degenerate ends of the round spectrum.
    let sparse = DeadlineInstance::new(
        (0..12)
            .map(|i| DeadlineJob::new(i, 10.0 * f64::from(i), 10.0 * f64::from(i) + 1.0, 1.0))
            .collect(),
    )
    .unwrap();
    check_equivalence(&sparse, "sparse");
    let dense = DeadlineInstance::new(
        (0..12)
            .map(|i| DeadlineJob::new(i, 0.0, 6.0, 0.5))
            .collect(),
    )
    .unwrap();
    check_equivalence(&dense, "dense");
}
