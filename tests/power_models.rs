//! Discrete-speed ladders and host power envelopes through every solver
//! entry that accepts a `PowerModel`.
//!
//! The load-bearing fact (proved in `pas_power::discrete` and pinned
//! here end-to-end): a [`DiscreteSpeeds`] ladder over a base model `P`
//! is itself a valid `PowerModel` whose curve is **sandwiched**
//!
//! ```text
//! P(σ)  ≤  L(σ)  ≤  r^α · P(σ)        (r = max adjacent level ratio)
//! ```
//!
//! — inside the ladder range because the interpolated chord lies above
//! the convex base curve but below the `r^α`-scaled one, and outside it
//! trivially (the ladder falls back to the base model). Scaling power by
//! `c` is the same as scaling the budget by `1/c`, so every budgeted
//! solver's optimum under the ladder is bracketed by the base model's
//! optimum at budgets `E` and `E/c`. These tests push that bracketing
//! through `makespan::laptop` (IncMerge), `makespan::server`,
//! `laptop_dp`, `server_moveright`, `Frontier`, `multi::makespan::laptop`, the
//! online engine, and `metrics::energy` — i.e. a ladder can be dropped
//! into any solver in the workspace and lands within the predicted
//! factor of the continuous answer.

use power_aware_scheduling::fleet::FixedSpeed;
use power_aware_scheduling::makespan::{self, Frontier};
use power_aware_scheduling::multi;
use power_aware_scheduling::power::{DiscreteSpeeds, PolyPower};
use power_aware_scheduling::prelude::*;
use power_aware_scheduling::sim::online::run_online;
use power_aware_scheduling::workload::strategies;
use proptest::prelude::*;

const ALPHA: f64 = 3.0;
const TOL: f64 = 1e-6;

fn ladders() -> Vec<DiscreteSpeeds<PolyPower>> {
    vec![
        // The Athlon64 ladder from the paper's discrete-speed discussion.
        DiscreteSpeeds::new(PolyPower::CUBE, vec![0.8, 1.8, 2.0]),
        // A finer ladder: tighter r, tighter sandwich.
        DiscreteSpeeds::new(PolyPower::CUBE, vec![0.5, 0.75, 1.0, 1.5, 2.0, 2.5]),
        // A deliberately coarse two-level ladder: worst-case r.
        DiscreteSpeeds::new(PolyPower::CUBE, vec![0.6, 2.4]),
    ]
}

/// The sandwich factor `c = r^α` for a ladder.
fn factor(ladder: &DiscreteSpeeds<PolyPower>) -> f64 {
    ladder.max_adjacent_ratio().powf(ALPHA)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// IncMerge laptop: `T_P(E) ≤ T_L(E) ≤ T_P(E/c)`.
    #[test]
    fn laptop_makespan_is_bracketed(
        instance in strategies::instances(8),
        budget in 1.0f64..60.0,
        which in 0usize..3,
    ) {
        let ladder = &ladders()[which];
        let c = factor(ladder);
        let base = makespan::laptop(&instance, &PolyPower::CUBE, budget).unwrap();
        let lad = makespan::laptop(&instance, ladder, budget).unwrap();
        let scaled = makespan::laptop(&instance, &PolyPower::CUBE, budget / c).unwrap();
        prop_assert!(base.makespan() <= lad.makespan() + TOL,
            "ladder cannot beat the continuous model on the same budget");
        prop_assert!(lad.makespan() <= scaled.makespan() + TOL,
            "ladder cannot lose more than the sandwich factor");
    }

    /// IncMerge server: `E_P(T) ≤ E_L(T) ≤ c · E_P(T)`.
    #[test]
    fn server_energy_is_bracketed(
        instance in strategies::instances(8),
        slack in 0.5f64..10.0,
        which in 0usize..3,
    ) {
        let ladder = &ladders()[which];
        let c = factor(ladder);
        let deadline = instance.last_release() + slack;
        let base = makespan::server(&instance, &PolyPower::CUBE, deadline).unwrap();
        let lad = makespan::server(&instance, ladder, deadline).unwrap();
        let (e_base, e_lad) = (base.energy(&PolyPower::CUBE), lad.energy(ladder));
        prop_assert!(e_base <= e_lad + TOL);
        prop_assert!(e_lad <= c * e_base + TOL);
    }

    /// The O(n²) DP reproduces IncMerge's answer under a ladder model —
    /// the cross-solver differential extends to non-polynomial models.
    #[test]
    fn dp_agrees_with_incmerge_under_ladder(
        instance in strategies::instances(6),
        budget in 1.0f64..40.0,
        which in 0usize..3,
    ) {
        let ladder = &ladders()[which];
        let fast = makespan::laptop(&instance, ladder, budget).unwrap();
        let slow = makespan::dp::laptop_dp(&instance, ladder, budget).unwrap();
        prop_assert!((fast.makespan() - slow.makespan()).abs() < 1e-6);
    }

    /// MoveRight's block partition is model-independent; calling it with
    /// a ladder must give the identical partition as the base model.
    #[test]
    fn moveright_partition_ignores_the_model(
        instance in strategies::instances(8),
        slack in 0.5f64..10.0,
        which in 0usize..3,
    ) {
        let ladder = &ladders()[which];
        let deadline = instance.last_release() + slack;
        let a = makespan::moveright::server_moveright(&instance, &PolyPower::CUBE, deadline).unwrap();
        let b = makespan::moveright::server_moveright(&instance, ladder, deadline).unwrap();
        prop_assert!((a.makespan() - b.makespan()).abs() < 1e-12);
    }

    /// The frontier built under a ladder agrees with the direct laptop
    /// solve under the same ladder at every queried budget.
    #[test]
    fn frontier_is_consistent_under_ladder(
        instance in strategies::instances(8),
        budget in 1.0f64..60.0,
        which in 0usize..3,
    ) {
        let ladder = &ladders()[which];
        let frontier = Frontier::build(&instance, ladder);
        let direct = makespan::laptop(&instance, ladder, budget).unwrap();
        let via_frontier = frontier.makespan(ladder, budget).unwrap();
        prop_assert!((direct.makespan() - via_frontier).abs() < 1e-6);
    }

    /// Equal-work multiprocessor laptop under a ladder: bracketed by the
    /// base model at budgets `E` and `E/c`.
    #[test]
    fn multi_laptop_is_bracketed(
        n in 2usize..7,
        m in 1usize..4,
        budget in 2.0f64..40.0,
        which in 0usize..3,
    ) {
        let instance = Instance::new(
            (0..n).map(|i| Job::new(i as u32, i as f64 * 0.5, 1.0)).collect(),
        ).unwrap();
        let ladder = &ladders()[which];
        let c = factor(ladder);
        let base = multi::makespan::laptop(&instance, &PolyPower::CUBE, m, budget, 1e-9).unwrap();
        let lad = multi::makespan::laptop(&instance, ladder, m, budget, 1e-9).unwrap();
        let scaled = multi::makespan::laptop(&instance, &PolyPower::CUBE, m, budget / c, 1e-9).unwrap();
        prop_assert!(base.makespan <= lad.makespan + 1e-5);
        prop_assert!(lad.makespan <= scaled.makespan + 1e-5);
    }

    /// The online engine runs unmodified under a ladder, and the energy
    /// it meters obeys the pointwise sandwich against `metrics::energy`
    /// under the base and scaled models — for the *same* schedule.
    #[test]
    fn online_engine_energy_obeys_the_sandwich(
        instance in strategies::instances(8),
        speed in 0.3f64..2.8,
        which in 0usize..3,
    ) {
        let ladder = &ladders()[which];
        let c = factor(ladder);
        let mut policy = FixedSpeed::new(speed);
        let outcome = run_online(&instance, ladder, &mut policy).unwrap();
        let e_base = metrics::energy(&outcome.schedule, &PolyPower::CUBE);
        let e_lad = metrics::energy(&outcome.schedule, ladder);
        prop_assert!((outcome.energy - e_lad).abs() < 1e-6,
            "the engine's meter must agree with metrics::energy under the same model");
        prop_assert!(e_base <= e_lad + TOL);
        prop_assert!(e_lad <= c * e_base + TOL);
    }
}

/// Strictness: between two levels the ladder is *strictly* dearer than
/// a strictly convex base (chord above curve), so a fixed-speed run at
/// an off-level speed strictly separates the two meters.
#[test]
fn off_level_speed_strictly_separates_ladder_from_base() {
    let ladder = DiscreteSpeeds::new(PolyPower::CUBE, vec![0.8, 1.8, 2.0]);
    let instance = Instance::from_pairs(&[(0.0, 2.0), (1.0, 1.0)]).unwrap();
    let mut policy = FixedSpeed::new(1.2); // strictly between 0.8 and 1.8
    let outcome = run_online(&instance, &ladder, &mut policy).unwrap();
    let e_base = metrics::energy(&outcome.schedule, &PolyPower::CUBE);
    assert!(
        outcome.energy > e_base + 1e-9,
        "interpolated ladder power must be strictly above σ³ off-level"
    );
}
