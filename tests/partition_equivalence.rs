//! Equivalence oracle for the incremental `L_α`-norm branch and bound.
//!
//! `multi::partition::min_norm_assignment` (incremental sorted-loads
//! state, seeded incumbent, equal-load symmetry breaking), the kept
//! seed engine `min_norm_assignment_reference` (per-node re-sort and
//! re-scan), and the work-deque parallel solver must all return
//! assignments of identical `L_α` norm — exact optima are unique in
//! value even when the labelling ties — across uniform, skewed, and
//! duplicate-weight job families, including `m > n` and single-job
//! edge cases. Each returned labelling must also *realize* its claimed
//! norm.

use power_aware_scheduling::multi::parallel::{
    min_norm_assignment_parallel, min_norm_assignment_parallel_with,
};
use power_aware_scheduling::multi::partition::{
    local_search, lpt_assignment, min_norm_assignment, min_norm_assignment_reference,
};
use proptest::prelude::*;

/// Norm agreement required between the engines.
const NORM_TOL: f64 = 1e-9;

/// Check all three engines on one instance; returns the incremental
/// engine's norm.
fn check_engines(works: &[f64], m: usize, alpha: f64, label: &str) -> f64 {
    let (inc_labels, inc) = min_norm_assignment(works, m, alpha);
    let (_, reference) = min_norm_assignment_reference(works, m, alpha);
    let (par_labels, par) = min_norm_assignment_parallel(works, m, alpha);
    // Pinned worker count exercises the deque/atomic machinery even on
    // single-core CI machines (the auto variant may delegate there).
    let (_, par3) = min_norm_assignment_parallel_with(works, m, alpha, 3);
    assert!(
        (inc - reference).abs() <= NORM_TOL * reference.max(1.0),
        "{label}: incremental {inc} vs reference {reference}"
    );
    assert!(
        (par - inc).abs() <= NORM_TOL * inc.max(1.0),
        "{label}: parallel {par} vs incremental {inc}"
    );
    assert!(
        (par3 - inc).abs() <= NORM_TOL * inc.max(1.0),
        "{label}: parallel(3 workers) {par3} vs incremental {inc}"
    );
    for (engine, labels, norm) in [
        ("incremental", &inc_labels, inc),
        ("parallel", &par_labels, par),
    ] {
        let mut loads = vec![0.0f64; m];
        for (w, &p) in works.iter().zip(labels) {
            assert!(p < m, "{label}: {engine} label {p} out of range");
            loads[p] += w;
        }
        let realized: f64 = loads.iter().map(|l| l.powf(alpha)).sum();
        assert!(
            (realized - norm).abs() <= NORM_TOL * norm.max(1.0),
            "{label}: {engine} claims {norm} but realizes {realized}"
        );
    }
    inc
}

#[test]
fn single_job_families() {
    for m in [1usize, 2, 7] {
        let norm = check_engines(&[2.5], m, 3.0, &format!("single job, m={m}"));
        assert!((norm - 2.5f64.powi(3)).abs() < 1e-9);
    }
}

#[test]
fn more_processors_than_jobs() {
    // m > n: optimum puts every job alone, norm = Σ w^α.
    let works = [3.0, 2.0, 1.0];
    for m in [4usize, 8, 16] {
        let norm = check_engines(&works, m, 3.0, &format!("m={m} > n=3"));
        assert!((norm - (27.0 + 8.0 + 1.0)).abs() < 1e-9);
    }
}

#[test]
fn duplicate_weight_families() {
    // All-equal and few-distinct-values instances: the adversarial case
    // for symmetry breaking (every prefix has many tied loads).
    for (n, m) in [(9usize, 3usize), (12, 4), (13, 5)] {
        let works = vec![1.5; n];
        check_engines(&works, m, 3.0, &format!("all-equal n={n} m={m}"));
        let works: Vec<f64> = (0..n).map(|k| 1.0 + (k % 3) as f64).collect();
        check_engines(&works, m, 2.0, &format!("three-valued n={n} m={m}"));
    }
}

#[test]
fn heuristics_bound_the_optimum() {
    // LPT ≥ local-search ≥ optimum, on a mixed family.
    let works: Vec<f64> = (0..13).map(|k| 0.4 + (k as f64 * 0.77) % 2.9).collect();
    let (m, alpha) = (4usize, 3.0);
    let (_, opt) = min_norm_assignment(&works, m, alpha);
    let (lpt_labels, lpt) = lpt_assignment(&works, m, alpha);
    let (_, ls) = local_search(&works, m, alpha, lpt_labels);
    assert!(opt <= lpt + 1e-9 && opt <= ls + 1e-9);
    assert!(ls <= lpt + 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_family_norms_agree(
        works in proptest::collection::vec(0.2f64..4.0, 1..13),
        m in 1usize..5,
        alpha in 2.0f64..4.0,
    ) {
        check_engines(&works, m, alpha, "proptest uniform");
    }

    #[test]
    fn skewed_family_norms_agree(
        raw in proptest::collection::vec(0.1f64..1.5, 2..12),
        m in 2usize..5,
    ) {
        // Cubing skews the weights: a few dominant jobs, many tiny ones.
        let works: Vec<f64> = raw.iter().map(|w| w * w * w + 0.05).collect();
        check_engines(&works, m, 3.0, "proptest skewed");
    }

    #[test]
    fn duplicate_family_norms_agree(
        picks in proptest::collection::vec(0usize..3, 2..14),
        m in 2usize..5,
    ) {
        // Weights drawn from a 3-value set: maximal load ties.
        let table = [0.5, 1.25, 2.0];
        let works: Vec<f64> = picks.iter().map(|&i| table[i]).collect();
        check_engines(&works, m, 3.0, "proptest duplicates");
    }
}
