//! Differential harness: sharded-arena engine vs. retained reference.
//!
//! PR8 rebuilt the online engine's job state as a data-oriented
//! struct-of-arrays arena ([`ShardedReadySet`]) with deadline-band
//! shard aggregates and batched arrival ingestion; the original dense
//! `Vec<PendingJob>` store survives per the workspace convention as the
//! `*_reference` path. Both stores drive the *same generic event loop*
//! (`EngineState<R>`), so this suite proves the two storage layouts are
//! observationally indistinguishable — **bit-identical**
//! [`outcome_digest`]s across:
//!
//! * plain event streams, over the whole policy roster (including the
//!   new qOA/BKP policies, which read the band aggregates);
//! * seeded fault plans (crashes both semantics, cancels, throttles,
//!   arrival bursts);
//! * admission-gated runs (every shed policy);
//! * crash/restore cuts through the serving layer — the v2 journal
//!   snapshot encodes the arena (slots, free list, queue, band
//!   ledger), and a restored server must land on the same bits as an
//!   uninterrupted run on the *reference* store;
//! * an n-doubling ladder pinning the new policies' empirical E13
//!   competitive ratio flat (bounded, non-growing) where SpendAll's
//!   grows.
//!
//! [`ShardedReadySet`]: power_aware_scheduling::sim::ShardedReadySet
//! [`outcome_digest`]: power_aware_scheduling::sim::outcome_digest

use power_aware_scheduling::online::{
    compare_online, AdaptiveRate, Bkp, FlowReplanner, FractionalSpend, Qoa, SpendAll,
};
use power_aware_scheduling::power::PolyPower;
use power_aware_scheduling::sim::online::{AdmissionConfig, OnlinePolicy, ShedPolicy};
use power_aware_scheduling::sim::{
    outcome_digest, run_online_gated, run_online_gated_reference, run_online_with_faults,
    run_online_with_faults_reference, FaultModel, FaultPlan, Journal, ServeConfig, Server,
};
use power_aware_scheduling::workload::{generators, strategies, Instance};
use proptest::prelude::*;

/// Fresh-constructor roster: policies are stateful across a run, so
/// every engine gets its own instance built from the same parameters.
#[allow(clippy::type_complexity)]
fn roster(budget: f64) -> Vec<(&'static str, Box<dyn Fn() -> Box<dyn OnlinePolicy>>)> {
    let model = PolyPower::CUBE;
    vec![
        (
            "spend-all",
            Box::new(move || Box::new(SpendAll::new(model, budget)) as Box<dyn OnlinePolicy>),
        ),
        (
            "fractional",
            Box::new(move || Box::new(FractionalSpend::new(model, budget, 0.5))),
        ),
        (
            "adaptive",
            Box::new(move || Box::new(AdaptiveRate::new(model, budget, 10.0))),
        ),
        (
            "qoa",
            Box::new(move || Box::new(Qoa::new(model, 1.5, 3.0, 8.0))),
        ),
        ("bkp", Box::new(|| Box::new(Bkp::default()))),
        (
            "flow-replanner",
            Box::new(move || Box::new(FlowReplanner::new(3.0, budget, 16))),
        ),
    ]
}

fn sample_plan(instance: &Instance, rate: f64, seed: u64) -> FaultPlan {
    if rate <= 0.0 {
        return FaultPlan::none();
    }
    let horizon = instance.last_release() + instance.total_work();
    let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
    FaultModel::uniform_mix(rate)
        .with_event_budget(24.0, horizon)
        .sample(horizon, &ids, seed)
}

/// Assert the arena and reference engines agree to the bit on one
/// (instance, plan) under every roster policy.
fn assert_equivalent(instance: &Instance, plan: &FaultPlan) {
    let model = PolyPower::CUBE;
    let budget = 2.0 * instance.total_work();
    for (name, fresh) in roster(budget) {
        let mut arena_policy = fresh();
        let mut reference_policy = fresh();
        let a = run_online_with_faults(instance, &model, arena_policy.as_mut(), plan)
            .unwrap_or_else(|e| panic!("{name}: arena run failed: {e}"));
        let b = run_online_with_faults_reference(instance, &model, reference_policy.as_mut(), plan)
            .unwrap_or_else(|e| panic!("{name}: reference run failed: {e}"));
        assert_eq!(
            outcome_digest(&a),
            outcome_digest(&b),
            "{name}: arena and reference digests diverged"
        );
        assert_eq!(
            a.energy.to_bits(),
            b.energy.to_bits(),
            "{name}: energy bits diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arena_matches_reference_on_plain_streams(
        instance in strategies::instances(10),
    ) {
        assert_equivalent(&instance, &FaultPlan::none());
    }

    #[test]
    fn arena_matches_reference_under_faults(
        instance in strategies::instances(10),
        rate in 0f64..0.4,
        seed in 0u64..1_000,
    ) {
        let plan = sample_plan(&instance, rate, seed);
        assert_equivalent(&instance, &plan);
    }

    #[test]
    fn arena_matches_reference_under_admission_gating(
        instance in strategies::instances(10),
        capacity in 1usize..6,
        shed in 0u32..3,
        rate in 0f64..0.3,
        seed in 0u64..1_000,
    ) {
        let model = PolyPower::CUBE;
        let plan = sample_plan(&instance, rate, seed);
        let admission = AdmissionConfig {
            capacity,
            shed: match shed {
                0 => ShedPolicy::RejectNewest,
                1 => ShedPolicy::EvictOldest,
                _ => ShedPolicy::DeadlineAware { slo: 4.0, service_rate: 1.0 },
            },
        };
        let budget = 2.0 * instance.total_work();
        for (name, fresh) in roster(budget) {
            let mut pa = fresh();
            let mut pb = fresh();
            let a = run_online_gated(&instance, &model, pa.as_mut(), &plan, admission)
                .unwrap_or_else(|e| panic!("{name}: gated arena run failed: {e}"));
            let b = run_online_gated_reference(&instance, &model, pb.as_mut(), &plan, admission)
                .unwrap_or_else(|e| panic!("{name}: gated reference run failed: {e}"));
            prop_assert!(outcome_digest(&a) == outcome_digest(&b), "{} diverged", name);
        }
    }
}

/// Crash/restore cuts close the loop through the v2 journal: kill the
/// arena-backed server mid-run, restore from the journal it flushed,
/// and land on the same bits as the *reference* engine's uninterrupted
/// run — so the snapshot codec (slots, free list, queue order, band
/// ledger) is exercised against the independent storage layout, not
/// against itself.
#[test]
fn crash_restore_cuts_match_the_reference_engine() {
    let model = PolyPower::CUBE;
    for seed in 0..3u64 {
        let instance = generators::poisson(10, 0.8, (0.5, 1.5), seed);
        let plan = sample_plan(&instance, 0.2, seed.wrapping_mul(0x51ed));
        let budget = 2.0 * instance.total_work();
        let config = ServeConfig {
            admission: None,
            snapshot_every: Some(2),
            watchdog: None,
            record_latency: false,
        };
        // Independent ground truth: the reference engine, no serving
        // layer involved.
        let mut reference_policy = FlowReplanner::new(3.0, budget, 32);
        let want = outcome_digest(
            &run_online_with_faults_reference(&instance, &model, &mut reference_policy, &plan)
                .unwrap(),
        );
        for cut in [1u64, 3, 7] {
            let mut policy = FlowReplanner::new(3.0, budget, 32);
            let mut server =
                Server::new(&instance, &model, &plan, config, Journal::memory()).unwrap();
            let done = server.run_for(&mut policy, cut).unwrap();
            let served = if done {
                server.finish().unwrap()
            } else {
                let prior = server.journal().contents().unwrap().to_string();
                drop(server);
                let mut policy = FlowReplanner::new(3.0, budget, 32);
                let restored = Server::restore(
                    &instance,
                    &model,
                    &plan,
                    config,
                    &prior,
                    Journal::memory(),
                    &mut policy,
                )
                .unwrap();
                restored.run(&mut policy).unwrap()
            };
            assert_eq!(
                outcome_digest(&served.outcome),
                want,
                "seed {seed} cut {cut}: restored arena diverged from reference"
            );
        }
    }
}

/// Empirical E13 ratio of a fresh policy at instance size `n`.
fn ratio_at(n: usize, fresh: &dyn Fn(f64) -> Box<dyn OnlinePolicy>, seed: u64) -> f64 {
    let model = PolyPower::CUBE;
    let instance = generators::poisson(n, 0.8, (0.5, 1.5), seed);
    let budget = 1.5 * instance.total_work();
    let mut policy = fresh(budget);
    compare_online(&instance, &model, budget, policy.as_mut())
        .expect("comparison succeeds")
        .ratio
}

/// The headline property: qOA's and BKP's competitive ratios are flat
/// (bounded, non-growing within tolerance) across an n-doubling
/// ladder, while the global-energy-share policies degrade —
/// AdaptiveRate's ratio *grows* with `n` (its fixed extrapolation
/// horizon reserves too little as the arrival stream lengthens), and
/// SpendAll is already saturated at the floor-speed crawl (ratio five
/// orders of magnitude above the flat policies at every rung). The
/// bench (`BENCH_policies.json`, E13 extension) records the same
/// ladder at production sizes.
#[test]
fn flat_ratio_ladder_separates_local_from_global_policies() {
    let model = PolyPower::CUBE;
    let sizes = [250usize, 500, 1000, 2000];
    let mut table: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, fresh) in [
        (
            "qoa",
            // The ladder budget is 1.5× total work, so the per-work
            // allowance matching it is exactly 1.5.
            Box::new(|_b: f64| Box::new(Qoa::new(model, 1.5, 3.0, 8.0)) as Box<dyn OnlinePolicy>)
                as Box<dyn Fn(f64) -> Box<dyn OnlinePolicy>>,
        ),
        ("bkp", Box::new(|_b: f64| Box::new(Bkp::default()))),
        (
            "adaptive",
            Box::new(|b: f64| Box::new(AdaptiveRate::new(model, b, 10.0))),
        ),
        (
            "spend-all",
            Box::new(|b: f64| Box::new(SpendAll::new(model, b))),
        ),
    ] {
        let ratios: Vec<f64> = sizes.iter().map(|&n| ratio_at(n, &fresh, 3)).collect();
        table.push((name, ratios));
    }
    for (name, ratios) in &table {
        eprintln!("{name}: {ratios:?}");
        let (first, last) = (ratios[0], ratios[ratios.len() - 1]);
        match *name {
            "adaptive" => {
                // The fixed-horizon hedger measurably degrades as the
                // stream lengthens: the ladder at least doubles it.
                assert!(
                    last > 2.0 * first,
                    "adaptive-rate should grow across the ladder: {ratios:?}"
                );
            }
            "spend-all" => {
                // Saturated: every rung crawls the tail at MIN_SPEED.
                for &r in ratios {
                    assert!(r > 1_000.0, "spend-all should crawl: {ratios:?}");
                }
            }
            _ => {
                // Flat: bounded by a small constant at every rung, and
                // the final rung no worse than a modest factor of the
                // first (non-growing up to sampling noise).
                for &r in ratios {
                    assert!(r < 10.0, "{name} ratio unbounded: {ratios:?}");
                }
                assert!(
                    last <= first * 1.35 + 0.05,
                    "{name} ratio grows across the ladder: {ratios:?}"
                );
            }
        }
    }
}
