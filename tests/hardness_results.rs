//! Integration tests for the paper's two hardness results.
//!
//! * **Theorem 8** (flow inexactness): the degree-12 witness polynomial,
//!   reproduced exactly, plus the measured correction to the paper's
//!   boundary window (see `flow::hardness` module docs and
//!   EXPERIMENTS.md E6).
//! * **Theorem 11** (multiprocessor NP-hardness): the Partition
//!   reduction decides correctly in both directions against the exact
//!   subset-sum oracle.

use power_aware_scheduling::flow::hardness;
use power_aware_scheduling::multi::partition;
use power_aware_scheduling::workload::generators;

#[test]
fn theorem8_polynomial_reproduced_exactly() {
    // The elimination of (1)-(3) at E=9 equals the paper's printed
    // coefficients term by term.
    let ours = hardness::boundary_polynomial(9.0);
    let paper = hardness::witness_polynomial();
    assert_eq!(ours.coeffs(), paper.coeffs());
    assert_eq!(paper.degree(), Some(12));
}

#[test]
fn theorem8_witness_verified_inside_measured_window() {
    let report = hardness::verify_witness(1e-12).unwrap();
    // Boundary configuration: J2 completes exactly at t=1.
    assert!((report.solution.completions[1] - 1.0).abs() < 1e-8);
    // Equations (1)-(3) hold ...
    for r in report.equation_residuals {
        assert!(r < 1e-6, "residual {r}");
    }
    // ... and σ2 sits on a root of the degree-12 polynomial: the
    // quantity Theorem 8 proves has no radical expression.
    assert!(report.root_distance < 1e-7);
}

#[test]
fn theorem8_paper_budget_discrepancy_is_stable() {
    // Documented reproduction finding: at the paper's E=9 the optimum is
    // the all-push configuration σ³ ∝ (3, 2, 1), which IS expressible in
    // radicals; the boundary critical point the paper's polynomial
    // describes has strictly larger flow.
    let report = hardness::paper_budget_report(1e-12).unwrap();
    assert_eq!(report.signature, "PP");
    assert!((report.cube_ratios[0] - 3.0).abs() < 1e-6);
    assert!((report.cube_ratios[1] - 2.0).abs() < 1e-6);
    let boundary = report.boundary_flow.unwrap();
    assert!(boundary > report.optimal_flow);
    // The measured window brackets the verified budget.
    let (lo, hi) = hardness::measured_boundary_window();
    assert!(lo < hardness::VERIFIED_BUDGET && hardness::VERIFIED_BUDGET < hi);
    assert!(
        hardness::PAPER_BUDGET < lo,
        "E=9 lies below the measured window"
    );
}

#[test]
fn theorem11_reduction_decides_partition() {
    // Yes instances from the generator...
    for seed in 0..8 {
        let values = generators::partition_yes_instance(4, 30, seed);
        assert!(partition::partition_witness(&values).is_some());
        assert!(
            partition::schedule_decides_partition(&values, 3.0),
            "{values:?}"
        );
    }
    // ...and assorted no instances.
    for values in [
        vec![1u64, 2],
        vec![2, 4, 8, 32],
        vec![3, 3, 3],
        vec![10, 9, 2],
    ] {
        let expected = partition::partition_witness(&values).is_some();
        assert_eq!(
            partition::schedule_decides_partition(&values, 3.0),
            expected,
            "{values:?}"
        );
    }
}

#[test]
fn theorem11_works_for_other_alphas() {
    // The reduction's convexity argument is alpha-independent.
    let values = vec![5u64, 4, 3, 2, 1, 1];
    let expected = partition::partition_witness(&values).is_some();
    for alpha in [1.5, 2.0, 3.0, 4.0] {
        assert_eq!(
            partition::schedule_decides_partition(&values, alpha),
            expected,
            "alpha {alpha}"
        );
    }
}
