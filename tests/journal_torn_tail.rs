//! Exhaustive torn-tail sweep over the serving journal.
//!
//! A SIGKILL can land after *any* byte of the journal file. The
//! recovery contract is all-or-nothing per prefix: restoring from the
//! first `k` bytes must either
//!
//! * succeed — and then replaying to completion reproduces the
//!   uninterrupted run **bit-identically** (the truncated suffix only
//!   ever removes whole records plus at most one torn line, which the
//!   reader drops); or
//! * fail with a clean [`Server::restore`] error (too little survived
//!   to even establish the scenario),
//!
//! and it must never panic, hang, or silently diverge. This test
//! enumerates **every** byte prefix of a small journal and checks the
//! trichotomy directly — the exhaustive version of the single
//! mid-write cut in `tests/serve_recovery.rs`.

use power_aware_scheduling::online::SpendAll;
use power_aware_scheduling::power::PolyPower;
use power_aware_scheduling::sim::{
    outcome_digest, FaultModel, Journal, ServeConfig, Server, WatchdogConfig,
};
use power_aware_scheduling::workload::generators;

#[test]
fn every_byte_prefix_restores_bitwise_or_errors_cleanly() {
    let model = PolyPower::CUBE;
    // Keep the journal small: the sweep cost is quadratic-ish (every
    // prefix replays the scenario), so a handful of jobs with a tight
    // snapshot cadence and a light fault plan give full phase coverage
    // (meta, snapshot, decision, fault records) in a few kilobytes.
    let instance = generators::poisson(5, 0.8, (0.5, 1.5), 9);
    let horizon = instance.last_release() + instance.total_work();
    let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
    let plan = FaultModel::uniform_mix(0.2)
        .with_event_budget(6.0, horizon)
        .sample(horizon, &ids, 9);
    let config = ServeConfig {
        admission: None,
        snapshot_every: Some(2),
        watchdog: Some(WatchdogConfig::default()),
        record_latency: false,
    };
    let budget = 2.0 * instance.total_work();

    let fresh_policy = || SpendAll::new(model, budget);

    // The uninterrupted run every surviving prefix must reproduce.
    let mut policy = fresh_policy();
    let server = Server::new(&instance, &model, &plan, config, Journal::memory()).unwrap();
    let want = outcome_digest(&server.run(&mut policy).unwrap().outcome);

    // The journal a killed process would leave behind, cut mid-flight.
    let mut policy = fresh_policy();
    let mut server = Server::new(&instance, &model, &plan, config, Journal::memory()).unwrap();
    assert!(
        !server.run_for(&mut policy, 6).unwrap(),
        "cut must land mid-run for the sweep to exercise replay"
    );
    let journal = server.journal().contents().unwrap().to_string();
    drop(server);
    // The journal format is pure ASCII, so every byte prefix is valid
    // UTF-8 and the sweep can slice without char-boundary care.
    assert!(journal.is_ascii(), "journal must be ASCII for byte slicing");
    assert!(journal.len() > 100, "journal too small to be a real sweep");

    let mut restored = 0usize;
    let mut rejected = 0usize;
    for k in 0..=journal.len() {
        let prefix = &journal[..k];
        let mut policy = fresh_policy();
        match Server::restore(
            &instance,
            &model,
            &plan,
            config,
            prefix,
            Journal::memory(),
            &mut policy,
        ) {
            Ok(server) => {
                let served = server
                    .run(&mut policy)
                    .unwrap_or_else(|e| panic!("prefix {k}/{} run failed: {e}", journal.len()));
                assert_eq!(
                    outcome_digest(&served.outcome),
                    want,
                    "prefix {k}/{} diverged from the uninterrupted run",
                    journal.len()
                );
                restored += 1;
            }
            Err(_) => rejected += 1,
        }
    }
    // Both arms of the trichotomy must actually occur: tiny prefixes
    // cannot restore, and any prefix holding the meta record can.
    assert!(rejected > 0, "no prefix was rejected — sweep too easy");
    assert!(
        restored > journal.len() / 2,
        "most prefixes should restore ({restored} of {})",
        journal.len()
    );
}
