//! Property-based tests for the deadline-scheduling substrate (YDS /
//! AVR / OA) over randomized instance families.

use power_aware_scheduling::deadline::{avr, oa, yds, DeadlineInstance, DeadlineJob};
use power_aware_scheduling::prelude::*;
use power_aware_scheduling::sim::metrics;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: 1..=12 jobs with random windows and works.
fn deadline_instances() -> impl Strategy<Value = DeadlineInstance> {
    vec((0.0..20.0f64, 0.5..6.0f64, 0.2..2.0f64), 1..=12).prop_map(|rows| {
        DeadlineInstance::new(
            rows.into_iter()
                .enumerate()
                .map(|(i, (r, window, w))| DeadlineJob::new(i as u32, r, r + window, w))
                .collect(),
        )
        .expect("constructed jobs are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn yds_is_feasible_and_round_densities_decrease(inst in deadline_instances()) {
        let out = yds(&inst).unwrap();
        inst.validate_schedule(&out.schedule, 1e-6).unwrap();
        for pair in out.rounds.windows(2) {
            prop_assert!(pair[0].density >= pair[1].density - 1e-9);
        }
    }

    #[test]
    fn online_algorithms_feasible_and_dominated_by_bounds(
        inst in deadline_instances(),
    ) {
        let model = PolyPower::CUBE;
        let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
        let o = metrics::energy(&oa(&inst).unwrap(), &model);
        let a = metrics::energy(&avr(&inst).unwrap(), &model);
        prop_assert!(y <= o + 1e-6, "YDS {y} vs OA {o}");
        prop_assert!(y <= a + 1e-6, "YDS {y} vs AVR {a}");
        prop_assert!(o <= 27.0 * y + 1e-6, "OA ratio {}", o / y);
        prop_assert!(a <= 108.0 * y + 1e-6, "AVR ratio {}", a / y);
    }

    #[test]
    fn yds_energy_dominates_interval_bounds(inst in deadline_instances()) {
        // Jensen certificate: for every (release, deadline) candidate
        // window, OPT >= contained-work at window density.
        let model = PolyPower::CUBE;
        let y = metrics::energy(&yds(&inst).unwrap().schedule, &model);
        for a in inst.jobs() {
            for b in inst.jobs() {
                if b.deadline > a.release {
                    let w: f64 = inst
                        .jobs()
                        .iter()
                        .filter(|j| j.release >= a.release && j.deadline <= b.deadline)
                        .map(|j| j.work)
                        .sum();
                    if w > 0.0 {
                        let bound = model.energy(w, w / (b.deadline - a.release));
                        prop_assert!(y >= bound - 1e-6 * bound.max(1.0));
                    }
                }
            }
        }
    }

    #[test]
    fn yds_invariant_under_time_shift(inst in deadline_instances()) {
        // Energy is translation invariant.
        let model = PolyPower::CUBE;
        let base = metrics::energy(&yds(&inst).unwrap().schedule, &model);
        let shifted = DeadlineInstance::new(
            inst.jobs()
                .iter()
                .map(|j| DeadlineJob::new(j.id, j.release + 7.5, j.deadline + 7.5, j.work))
                .collect(),
        )
        .unwrap();
        let after = metrics::energy(&yds(&shifted).unwrap().schedule, &model);
        prop_assert!((base - after).abs() < 1e-6 * base.max(1.0));
    }

    #[test]
    fn widening_all_deadlines_never_costs_energy(inst in deadline_instances()) {
        // Relaxing every deadline by the same amount can only help.
        let model = PolyPower::CUBE;
        let base = metrics::energy(&yds(&inst).unwrap().schedule, &model);
        let relaxed = DeadlineInstance::new(
            inst.jobs()
                .iter()
                .map(|j| DeadlineJob::new(j.id, j.release, j.deadline + 3.0, j.work))
                .collect(),
        )
        .unwrap();
        let after = metrics::energy(&yds(&relaxed).unwrap().schedule, &model);
        prop_assert!(after <= base + 1e-6 * base.max(1.0), "{after} > {base}");
    }
}
