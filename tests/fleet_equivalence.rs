//! Fleet differential equivalence: the fleet layer adds no second
//! scheduler.
//!
//! Three families of evidence, all digest-level (bit-exact):
//!
//! 1. **Single-host collapse** — a 1-host fleet is bit-identical to the
//!    bare `pas_sim` online engine run over the same workload, policy,
//!    and fault plan. The fleet layer's dispatch, trace recording, and
//!    aggregation must be exactly zero-overhead semantically.
//! 2. **Record → serialize → parse → replay** — a recorded trace
//!    survives its textual round trip and replaying it reproduces the
//!    fleet digest bit-for-bit.
//! 3. **Golden oracle** — a 3-host fixed-speed scenario small enough to
//!    compute by hand pins the idle/sleep static-energy accounting to
//!    closed-form values.

use power_aware_scheduling::fleet::{
    replay, run, EnginePower, EventTrace, FleetScenario, HostConfig, HostPolicy,
};
use power_aware_scheduling::power::discrete::ATHLON64_GHZ;
use power_aware_scheduling::power::{DiscreteSpeeds, HostPower, PolyPower, SleepConfig};
use power_aware_scheduling::sim::faults::FaultModel;
use power_aware_scheduling::sim::journal::outcome_digest;
use power_aware_scheduling::sim::online::run_online_with_faults;
use power_aware_scheduling::workload::{Instance, Job};

fn workload() -> Instance {
    // Deliberate release ties so dispatch-order shuffling would show up
    // in the digest if the fleet failed to canonicalize assignment
    // order.
    Instance::new(vec![
        Job::new(0, 0.0, 2.0),
        Job::new(1, 0.0, 1.0),
        Job::new(2, 1.5, 0.5),
        Job::new(3, 1.5, 1.5),
        Job::new(4, 3.0, 1.0),
    ])
    .unwrap()
}

/// Run `scenario`'s single host through the bare engine with the
/// identical policy and fault plan, and return the outcome digest.
fn bare_engine_digest(scenario: &FleetScenario) -> u64 {
    let cfg = &scenario.hosts[0];
    let ids: Vec<u32> = scenario.workload.jobs().iter().map(|j| j.id).collect();
    let plan = scenario.host_plan(cfg.id, &ids);
    let model = cfg.power.model();
    let mut policy = cfg.policy.build(model);
    let outcome =
        run_online_with_faults(&scenario.workload, model, policy.as_mut(), &plan).unwrap();
    outcome_digest(&outcome)
}

#[test]
fn single_host_fleet_collapses_to_bare_engine() {
    let host = HostConfig::new(
        0,
        HostPower::dynamic_only(EnginePower::Poly(PolyPower::CUBE)),
    );
    let scenario = FleetScenario::new(vec![host], workload(), 20.0, 99);
    let fleet = run(&scenario).unwrap();
    assert_eq!(fleet.fleet_shed_jobs, 0);
    assert_eq!(
        fleet.hosts[0].digest,
        bare_engine_digest(&scenario),
        "1-host fleet must be bit-identical to the bare engine"
    );
}

#[test]
fn single_host_collapse_holds_with_cap_faults_and_ladder() {
    // The hard variant: discrete-speed ladder model, qOA policy, a hard
    // speed cap (full-horizon throttle), a background fault model, and
    // an SLO — everything host_plan can assemble.
    let ladder = DiscreteSpeeds::new(PolyPower::CUBE, ATHLON64_GHZ.to_vec());
    let mut host = HostConfig::new(0, HostPower::dynamic_only(EnginePower::Ladder(ladder)));
    host.policy = HostPolicy::Qoa {
        allowance: 6.0,
        alpha: 3.0,
        q: 5.0,
    };
    host.speed_cap = Some(1.8);
    let mut scenario = FleetScenario::new(vec![host], workload(), 20.0, 4242);
    scenario.fault_model = Some(FaultModel::uniform_mix(0.4));
    scenario.slo = Some(8.0);
    let fleet = run(&scenario).unwrap();
    assert_eq!(
        fleet.hosts[0].digest,
        bare_engine_digest(&scenario),
        "collapse must survive caps, faults, ladders, and SLOs"
    );
    assert!(
        fleet.hosts[0].throttle_clamps > 0,
        "the 1.8 cap must clamp qOA at least once on this workload"
    );
}

#[test]
fn trace_survives_textual_round_trip_and_replays_bit_identically() {
    let mut hosts: Vec<HostConfig> = (0..3)
        .map(|id| {
            HostConfig::new(
                id,
                HostPower::with_idle(EnginePower::Poly(PolyPower::CUBE), 0.25),
            )
        })
        .collect();
    hosts[1].policy = HostPolicy::Bkp { factor: 1.25 };
    let mut scenario = FleetScenario::new(hosts, workload(), 20.0, 31337);
    scenario.fault_model = Some(FaultModel::uniform_mix(0.3));
    let live = run(&scenario).unwrap();

    let text = live.trace.serialize();
    let parsed = EventTrace::parse(&text).expect("recorded trace must parse");
    assert_eq!(parsed, live.trace, "parse must invert serialize exactly");

    let replayed = replay(&scenario, &parsed).unwrap();
    assert_eq!(
        live.digest, replayed.digest,
        "record → text → parse → replay must reproduce the fleet digest"
    );
    assert_eq!(
        live.static_energy.to_bits(),
        replayed.static_energy.to_bits()
    );
    assert_eq!(
        live.dynamic_energy.to_bits(),
        replayed.dynamic_energy.to_bits()
    );
}

/// The hand-computable oracle. Three hosts, round-robin, fixed speed 1,
/// `P(σ) = σ³`, jobs (release, work) = (0,1), (1,1), (2,1) → host `i`
/// runs its job over `[i, i+1]` at speed 1 (dynamic energy 1 each).
/// Horizon 10. Static accounting, by hand:
///
/// * host 0 — dynamic-only: static = 0;
/// * host 1 — idle floor 0.5, idle over [0,1] ∪ [2,10] = 9 time units:
///   static = 4.5, no sleep state;
/// * host 2 — idle 2.0 with sleep {threshold 1, sleep power 0.5, wake
///   3}: gaps [0,2] and [3,10], both ≥ threshold so both sleep:
///   (2·1 + 0.5·1 + 3) + (2·1 + 0.5·6 + 3) = 5.5 + 8 = 13.5, two
///   sleep transitions.
///
/// Fleet totals: dynamic 3, static 18, flow 3 (each job's flow is 1),
/// makespan 3.
#[test]
fn three_host_golden_oracle_pins_idle_and_sleep_energy() {
    let cube = || EnginePower::Poly(PolyPower::CUBE);
    let hosts = vec![
        HostConfig::new(0, HostPower::dynamic_only(cube())),
        HostConfig::new(1, HostPower::with_idle(cube(), 0.5)),
        HostConfig::new(
            2,
            HostPower::with_idle(cube(), 2.0).with_sleep(SleepConfig {
                threshold: 1.0,
                sleep_power: 0.5,
                wake_energy: 3.0,
            }),
        ),
    ];
    let workload = Instance::new(vec![
        Job::new(0, 0.0, 1.0),
        Job::new(1, 1.0, 1.0),
        Job::new(2, 2.0, 1.0),
    ])
    .unwrap();
    let scenario = FleetScenario::new(hosts, workload, 10.0, 5);
    let out = run(&scenario).unwrap();

    let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
    assert_eq!(out.fleet_shed_jobs, 0);
    assert_eq!(out.completed_jobs, 3);
    for (i, h) in out.hosts.iter().enumerate() {
        assert_eq!(h.jobs_assigned, 1, "round-robin: one job per host");
        assert!(close(h.dynamic_energy, 1.0), "host {i} dynamic energy");
        assert!(close(h.total_flow, 1.0), "host {i} flow");
    }
    assert!(close(out.hosts[0].static_energy, 0.0));
    assert!(close(out.hosts[1].static_energy, 4.5));
    assert!(close(out.hosts[2].static_energy, 13.5));
    assert_eq!(out.hosts[0].sleep_transitions, 0);
    assert_eq!(out.hosts[1].sleep_transitions, 0);
    assert_eq!(out.hosts[2].sleep_transitions, 2);
    assert!(close(out.dynamic_energy, 3.0));
    assert!(close(out.static_energy, 18.0));
    assert!(close(out.total_energy(), 21.0));
    assert!(close(out.total_flow, 3.0));
    assert!(close(out.makespan, 3.0));
}
