//! Property-based integration tests (proptest) spanning the workspace.
//!
//! These fuzz the core structural theorems over the shared instance
//! strategies from `pas-workload`:
//!
//! * Lemmas 2–6 invariants of `IncMerge` output on arbitrary instances;
//! * frontier consistency (monotone, convex, agrees with `IncMerge`);
//! * laptop/server duality;
//! * Theorem-1 KKT residuals of the flow solver;
//! * schedule validation round trips.

use power_aware_scheduling::flow;
use power_aware_scheduling::makespan;
use power_aware_scheduling::prelude::*;
use power_aware_scheduling::workload::strategies;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incmerge_output_satisfies_lemmas(
        instance in strategies::instances(12),
        budget in 0.5f64..50.0,
    ) {
        let model = PolyPower::CUBE;
        let blocks = makespan::laptop(&instance, &model, budget).unwrap();
        // Lemma 7's five properties, checked structurally:
        blocks.verify_structure(&instance, 1e-6).unwrap();
        // The whole budget is spent (optimality requires it).
        let e = blocks.energy(&model);
        prop_assert!((e - budget).abs() < 1e-5 * budget.max(1.0));
        // The materialized schedule is legal.
        blocks.to_schedule(&instance).validate(&instance, 1e-5).unwrap();
    }

    #[test]
    fn frontier_agrees_with_incmerge(
        instance in strategies::instances(10),
        budget in 0.5f64..40.0,
    ) {
        let model = PolyPower::new(2.0);
        let frontier = Frontier::build(&instance, &model);
        let a = frontier.makespan(&model, budget).unwrap();
        let b = makespan::laptop(&instance, &model, budget).unwrap().makespan();
        prop_assert!((a - b).abs() < 1e-6 * a.max(1.0), "frontier {a} vs incmerge {b}");
    }

    #[test]
    fn makespan_monotone_in_energy(
        instance in strategies::instances(10),
        budget in 1.0f64..30.0,
    ) {
        let model = PolyPower::CUBE;
        let frontier = Frontier::build(&instance, &model);
        let m1 = frontier.makespan(&model, budget).unwrap();
        let m2 = frontier.makespan(&model, budget * 1.5).unwrap();
        prop_assert!(m2 < m1, "more energy must strictly reduce makespan");
    }

    #[test]
    fn laptop_server_duality(
        instance in strategies::instances(10),
        budget in 1.0f64..30.0,
    ) {
        let model = PolyPower::CUBE;
        let frontier = Frontier::build(&instance, &model);
        let t = frontier.makespan(&model, budget).unwrap();
        let back = frontier.energy_for_makespan(&model, t).unwrap();
        prop_assert!((back - budget).abs() < 1e-6 * budget);
        // And the streaming server solver agrees.
        let srv = makespan::server(&instance, &model, t).unwrap();
        prop_assert!((srv.energy(&model) - budget).abs() < 1e-5 * budget);
    }

    #[test]
    fn flow_solver_kkt_residuals(
        instance in strategies::equal_work_instances(8),
        budget_scale in 0.5f64..5.0,
    ) {
        let budget = budget_scale * instance.total_work();
        let sol = flow::laptop(&instance, 3.0, budget, 1e-9).unwrap();
        prop_assert!(sol.kkt.max_residual < 1e-6);
        prop_assert!((sol.energy - budget).abs() < 1e-5 * budget);
        sol.to_schedule(&instance).validate(&instance, 1e-5).unwrap();
    }

    #[test]
    fn flow_monotone_in_energy(
        instance in strategies::equal_work_instances(8),
    ) {
        let w = instance.total_work();
        let lo = flow::laptop(&instance, 3.0, w, 1e-9).unwrap();
        let hi = flow::laptop(&instance, 3.0, 2.0 * w, 1e-9).unwrap();
        prop_assert!(hi.total_flow < lo.total_flow);
    }

    #[test]
    fn speeds_nondecreasing_within_schedule(
        instance in strategies::instances(10),
        budget in 0.5f64..25.0,
    ) {
        // Lemma 6: block speeds non-decreasing over time.
        let model = PolyPower::CUBE;
        let blocks = makespan::laptop(&instance, &model, budget).unwrap();
        for pair in blocks.blocks().windows(2) {
            prop_assert!(pair[0].speed <= pair[1].speed * (1.0 + 1e-9));
        }
    }

    #[test]
    fn immediate_release_collapses_to_one_block(
        instance in strategies::immediate_instances(8),
        budget in 0.5f64..20.0,
    ) {
        // All jobs at t=0: Lemmas 2-5 collapse to a single block at one
        // speed (the Theorem-11 special case).
        let model = PolyPower::CUBE;
        let blocks = makespan::laptop(&instance, &model, budget).unwrap();
        prop_assert_eq!(blocks.blocks().len(), 1);
    }

    #[test]
    fn serde_instance_round_trip(instance in strategies::instances(12)) {
        let json = serde_json::to_string(&instance).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(instance, back);
    }

    #[test]
    fn time_shift_scaling_law(
        instance in strategies::instances(10),
        budget in 1.0f64..30.0,
        delta in 0.0f64..50.0,
    ) {
        // Shifting all releases by Δ shifts the optimal makespan by
        // exactly Δ (the schedule translates rigidly).
        let model = PolyPower::CUBE;
        let base = makespan::laptop(&instance, &model, budget).unwrap().makespan();
        let shifted = instance.shift_time(delta).unwrap();
        let after = makespan::laptop(&shifted, &model, budget).unwrap().makespan();
        prop_assert!(
            (after - base - delta).abs() < 1e-6 * after.max(1.0),
            "shift law violated: {base} + {delta} != {after}"
        );
    }

    #[test]
    fn dilation_scaling_law(
        instance in strategies::instances(10),
        budget in 1.0f64..30.0,
        c in 0.25f64..4.0,
    ) {
        // Scaling releases and works by c maps optima onto optima with
        // the *same speeds*: makespan and energy both scale by c.
        let model = PolyPower::CUBE;
        let base = makespan::laptop(&instance, &model, budget).unwrap();
        let dilated = instance.dilate(c).unwrap();
        let after = makespan::laptop(&dilated, &model, c * budget).unwrap();
        prop_assert!(
            (after.makespan() - c * base.makespan()).abs()
                < 1e-6 * after.makespan().max(1.0),
            "dilation law violated: {} vs {}",
            after.makespan(),
            c * base.makespan()
        );
        // Speeds unchanged block-by-block (same count, same values).
        prop_assert_eq!(after.blocks().len(), base.blocks().len());
        for (a, b) in after.blocks().iter().zip(base.blocks()) {
            prop_assert!((a.speed - b.speed).abs() < 1e-6 * b.speed.max(1e-9));
        }
    }

    #[test]
    fn flow_dilation_scaling_law(
        instance in strategies::equal_work_instances(6),
        c in 0.5f64..3.0,
    ) {
        // The flow optimum dilates too: flow scales by c when the
        // instance and the budget both scale by c.
        let budget = 2.0 * instance.total_work();
        let base = flow::laptop(&instance, 3.0, budget, 1e-10).unwrap();
        let dilated = instance.dilate(c).unwrap();
        let after = flow::laptop(&dilated, 3.0, c * budget, 1e-10).unwrap();
        prop_assert!(
            (after.total_flow - c * base.total_flow).abs()
                < 1e-5 * after.total_flow.max(1.0),
            "flow dilation violated: {} vs {}",
            after.total_flow,
            c * base.total_flow
        );
    }
}
