//! # power-aware-scheduling
//!
//! A production-quality Rust implementation of
//!
//! > David P. Bunde, **"Power-aware scheduling for makespan and flow"**,
//! > SPAA 2006 (arXiv cs/0605126)
//!
//! — offline speed-scaling (DVFS) scheduling where the scheduler chooses
//! processor *speeds* as well as job order, trading energy against
//! schedule quality.
//!
//! ## The model in one paragraph
//!
//! Jobs have release times `r_i` and work requirements `w_i`; a
//! processor at speed `σ` completes `σ` work per unit time and draws
//! power `P(σ)` for a continuous, strictly convex `P` with `P(0) = 0`
//! (canonically `P = σ^α`, `α > 1`). Both the **makespan** and the
//! **total flow** of a schedule improve with more energy, so the library
//! computes *non-dominated* schedules: the **laptop problem** fixes an
//! energy budget, the **server problem** fixes a quality target.
//!
//! ## Quick start
//!
//! ```rust
//! use power_aware_scheduling::prelude::*;
//!
//! // The paper's running example (§3.2, Figures 1-3).
//! let instance = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).unwrap();
//! let model = PolyPower::CUBE; // power = speed³
//!
//! // Laptop problem: best makespan on 21 units of energy (linear time).
//! let schedule = makespan::laptop(&instance, &model, 21.0).unwrap();
//! assert!((schedule.makespan() - (6.0 + 1.0 / 8f64.sqrt())).abs() < 1e-9);
//!
//! // All non-dominated schedules at once: the energy↔makespan frontier.
//! let frontier = Frontier::build(&instance, &model);
//! assert_eq!(frontier.breakpoints().len(), 2); // configurations change at E=17 and E=8
//!
//! // Server problem: least energy to finish by time 6.5.
//! let energy = frontier.energy_for_makespan(&model, 6.5).unwrap();
//! assert!((energy - 17.0).abs() < 1e-9);
//! ```
//!
//! ## Crate map
//!
//! This facade re-exports the workspace:
//!
//! | Module | Backing crate | Contents |
//! |--------|---------------|----------|
//! | [`power`] | `pas-power` | speed→power models ([`PolyPower`](power::PolyPower), [`ExpPower`](power::ExpPower), bounded and discrete variants) |
//! | [`workload`] | `pas-workload` | jobs, instances, seeded generators |
//! | [`sim`] | `pas-sim` | schedules, validation, metrics, online engine |
//! | [`fleet`] | `pas-fleet` | deterministic discrete-event fleet simulator: dispatcher, host power envelopes, bit-exact traces |
//! | [`makespan`] | `pas-core` | `IncMerge`, the frontier, DP/MoveRight baselines (paper §3) |
//! | [`flow`] | `pas-core` | Theorem-1 flow solver, tradeoff curve, Theorem-8 witness (paper §4) |
//! | [`multi`] | `pas-core` | cyclic assignment, multiprocessor makespan/flow, Partition reduction (paper §5) |
//! | [`deadline`] | `pas-core` | YDS / AVR / OA deadline scheduling (paper §2) |
//! | [`precedence`] | `pas-core` | precedence-constrained makespan (Pruhs–van Stee–Uthaisombut, §2) |
//! | [`online`] | `pas-core` | budgeted online policies (paper §6) |
//! | [`discrete`] | `pas-core` | discrete speed ladders and switch overhead (paper §6) |
//! | [`budget`] | `pas-core` | solve budgets and certified-gap degraded results |
//! | [`numeric`] | `pas-numeric` | rootfinding, polynomials, calculus helpers |
//!
//! See `README.md` for the crate map, the engine-vs-reference testing
//! convention, and the `BENCH_*` perf-trajectory record. One measured
//! correction to the paper's §4 example is documented in
//! [`flow::hardness`].

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use pas_fleet as fleet;
pub use pas_numeric as numeric;
pub use pas_power as power;
pub use pas_sim as sim;
pub use pas_workload as workload;

pub use pas_core::budget;
pub use pas_core::deadline;
pub use pas_core::discrete;
pub use pas_core::error;
pub use pas_core::flow;
pub use pas_core::makespan;
pub use pas_core::multi;
pub use pas_core::online;
pub use pas_core::precedence;
pub use pas_core::CoreError;

/// The items most programs need, in one import.
pub mod prelude {
    pub use crate::makespan::{self, Frontier};
    pub use crate::CoreError;
    pub use pas_power::{PolyPower, PowerModel};
    pub use pas_sim::{metrics, Schedule};
    pub use pas_workload::{Instance, Job};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let instance = Instance::from_pairs(&[(0.0, 1.0)]).unwrap();
        let model = PolyPower::CUBE;
        let schedule = makespan::laptop(&instance, &model, 1.0).unwrap();
        assert!((schedule.makespan() - 1.0).abs() < 1e-12);
        let sched = schedule.to_schedule(&instance);
        assert!((metrics::energy(&sched, &model) - 1.0).abs() < 1e-12);
    }
}
