//! Wireless packet transmission: the *other* convex power function.
//!
//! The paper's §2 credits Uysal-Biyikoglu, Prabhakar and El Gamal with
//! the closest related work — minimum-energy packet transmission over a
//! wireless link, where transmitting at rate `σ` costs roughly
//! `P(σ) = 2^σ − 1` (inverted Shannon capacity), "a totally different
//! power function" from DVFS. The paper's point: its algorithms only
//! need continuity and strict convexity, so the same `IncMerge` solves
//! the transmission problem — and, unlike the original quadratic-time
//! MoveRight algorithm, in linear time with the whole frontier.
//!
//! Run with: `cargo run --example wireless_transmission`

use power_aware_scheduling::makespan;
use power_aware_scheduling::power::ExpPower;
use power_aware_scheduling::prelude::*;

fn main() -> Result<(), CoreError> {
    // Packets arriving at a transmitter: (arrival time, bits·scale).
    let packets =
        Instance::from_pairs(&[(0.0, 3.0), (1.0, 1.5), (1.2, 2.0), (4.0, 4.0), (6.5, 1.0)])
            .expect("valid packets");
    let radio = ExpPower::shannon(); // P(rate) = 2^rate − 1

    println!("== Server problem: drain the queue by a deadline ==");
    println!("   (Uysal-Biyikoglu et al. solve this in O(n²); IncMerge in O(n))");
    for deadline in [8.0, 10.0, 14.0, 20.0] {
        let schedule = makespan::server(&packets, &radio, deadline)?;
        println!(
            "  deadline {deadline:5.1} -> energy {:8.4}, {} transmission rate blocks",
            schedule.energy(&radio),
            schedule.blocks().len()
        );
    }

    println!("\n== Laptop problem: best completion on a battery budget ==");
    for budget in [8.0, 15.0, 30.0, 60.0] {
        let schedule = makespan::laptop(&packets, &radio, budget)?;
        println!(
            "  battery {budget:5.1} -> all packets sent by {:.4}",
            schedule.makespan()
        );
    }

    println!("\n== The same API, the paper's canonical DVFS model ==");
    let cpu = PolyPower::CUBE;
    let schedule = makespan::laptop(&packets, &cpu, 30.0)?;
    println!(
        "  σ³ model, E=30 -> makespan {:.4} (energy check: {:.4})",
        schedule.makespan(),
        schedule.energy(&cpu)
    );

    println!("\n== MoveRight (quadratic baseline) agrees with IncMerge ==");
    let t = 12.0;
    let a = makespan::moveright::server_moveright(&packets, &radio, t)?;
    let b = makespan::server(&packets, &radio, t)?;
    println!(
        "  deadline {t}: MoveRight energy {:.6} vs IncMerge {:.6}",
        a.energy(&radio),
        b.energy(&radio)
    );
    Ok(())
}
