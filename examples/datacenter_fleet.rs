//! Multiprocessor scenario: a server farm with a shared energy meter.
//!
//! The paper's §1 motivates exactly this: "a server farm concerned only
//! about total energy consumption and not the consumption of each
//! machine separately". A burst of equal-sized requests lands on a small
//! fleet; we schedule with the §5 algorithms — Theorem-10 cyclic
//! assignment, equalized finish times for makespan, a shared last-job
//! speed for flow — and show the energy/quality tradeoffs as the fleet
//! grows. The closing sections exercise the robustness layer: a
//! fault-injected serving run and a time-budgeted solve that returns a
//! certified-gap incumbent instead of blocking.
//!
//! Run with: `cargo run --example datacenter_fleet`

use std::time::Duration;

use power_aware_scheduling::budget::{Budgeted, SolveBudget};
use power_aware_scheduling::multi;
use power_aware_scheduling::online::FractionalSpend;
use power_aware_scheduling::prelude::*;
use power_aware_scheduling::sim::{run_online_with_faults, FaultModel};
use power_aware_scheduling::workload::generators;

fn main() -> Result<(), CoreError> {
    // 24 equal-work requests arriving in three bursts.
    let raw = generators::bursty(3, 8, 5.0, 1.0, (1.0, 1.0), 42);
    let releases: Vec<f64> = raw.jobs().iter().map(|j| j.release).collect();
    let instance = Instance::equal_work(&releases, 1.0).expect("valid releases");
    let model = PolyPower::CUBE;
    let alpha = 3.0;
    let budget = 40.0;

    println!("24 unit-work requests, 3 bursts, shared energy budget {budget}");
    println!("\n== Makespan vs fleet size (Theorem 10 + Observation 1) ==");
    for m in [1usize, 2, 4, 8] {
        let sol = multi::makespan::laptop(&instance, &model, m, budget, 1e-10)?;
        sol.schedule
            .validate(&instance, 1e-6)
            .expect("schedule validates");
        println!(
            "  {m:2} machines -> makespan {:8.4}  (energy used {:.3})",
            sol.makespan, sol.energy
        );
    }

    println!("\n== Total flow vs fleet size (Observation 2: shared σ_n) ==");
    for m in [1usize, 2, 4, 8] {
        let sol = multi::flow::laptop(&instance, alpha, m, budget, 1e-10)?;
        println!(
            "  {m:2} machines -> total flow {:8.4}  (u = σ_n^α = {:.4})",
            sol.total_flow, sol.u
        );
    }

    println!("\n== Unequal work is NP-hard (Theorem 11) ==");
    // A Partition-style workload: can 2 machines hit makespan B/2 on
    // budget B?
    let values = [7u64, 5, 4, 4, 3, 3, 2, 2];
    let b: u64 = values.iter().sum();
    let witness = multi::partition::partition_witness(&values);
    println!(
        "  works {values:?} (B = {b}): perfect split {}",
        if witness.is_some() {
            "EXISTS"
        } else {
            "does not exist"
        }
    );
    let works: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    let (labels, norm) = multi::partition::min_norm_assignment(&works, 2, alpha);
    let t = multi::partition::makespan_for_loads_from_assignment(&works, &labels, alpha, b as f64);
    println!(
        "  exact B&B: optimal L_alpha norm {norm:.3}, makespan {t:.4} vs target {}",
        b as f64 / 2.0
    );
    let (lpt_labels, lpt_norm) = multi::partition::lpt_assignment(&works, 2, alpha);
    let (_, ls_norm) = multi::partition::local_search(&works, 2, alpha, lpt_labels);
    println!("  LPT heuristic norm {lpt_norm:.3}; after local search {ls_norm:.3}");

    println!("\n== Serving under faults (crash/cancel/throttle/burst mix) ==");
    // One machine of the fleet, online, under a seeded fault scenario:
    // the run replays bit-identically from the seed.
    let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
    let plan = FaultModel::uniform_mix(0.25)
        .sample(30.0, &ids, 7)
        .with_slo(12.0);
    let mut policy = FractionalSpend::new(model, budget, 0.5);
    let out = run_online_with_faults(&instance, &model, &mut policy, &plan)
        .expect("faulted run completes");
    let r = &out.resilience;
    println!(
        "  {} crash(es), downtime {:.2}, lost work {:.2}, wasted energy {:.3}",
        r.crashes, r.downtime, r.lost_work, r.wasted_energy
    );
    println!(
        "  {} cancelled, {} burst jobs, {} throttled decisions, worst recovery {:.2}, SLO misses {:?}",
        r.cancelled_jobs,
        r.burst_jobs,
        r.throttle_clamps,
        r.max_recovery_latency(),
        r.deadline_misses
    );
    if let Some(eff) = out.effective.as_ref() {
        out.schedule
            .validate(eff, 1e-6)
            .expect("surviving schedule validates against the effective instance");
        println!("  surviving schedule validates against the effective instance");
    }

    println!("\n== Degrading the solver gracefully (SolveBudget) ==");
    // A coarse quantized workload is adversarial for the B&B; a 10ms
    // wall budget returns the best incumbent found plus a *certified*
    // optimality gap instead of blocking the control plane.
    let hard: Vec<f64> = (0..36)
        .map(|i: usize| 0.5 + 0.75 * (((i * 2654435761) >> 7) % 4) as f64)
        .collect();
    let tight = SolveBudget {
        wall: Some(Duration::from_millis(10)),
        nodes: None,
    };
    match multi::partition::min_norm_assignment_budgeted(&hard, 9, alpha, &tight) {
        Budgeted::Exact((_, norm)) => println!("  finished exactly: norm {norm:.3}"),
        Budgeted::Degraded(d) => println!(
            "  degraded after {} nodes / {:?}: incumbent norm {:.3}, certified gap {:.3} (lower bound {:.3})",
            d.nodes, d.elapsed, d.value.1, d.bound_gap, d.lower_bound
        ),
    }
    Ok(())
}
