//! Fleet scenario: a heterogeneous server farm, simulated end to end.
//!
//! The paper's §1 motivates exactly this: "a server farm concerned only
//! about total energy consumption and not the consumption of each
//! machine separately". This example drives the discrete-event fleet
//! simulator (`pas_fleet`): heterogeneous hosts — continuous cubic,
//! a discrete Athlon-style frequency ladder running qOA, an idle+sleep
//! envelope running BKP, a speed-capped machine — serving a
//! heavy-tailed request stream through a dispatcher, with a host
//! joining late, one scripted mid-run failure, one planned
//! decommission, and a background fault model on top. The closing
//! section records the run's event trace, round-trips it through its
//! textual serialization, and replays it bit-identically — the
//! determinism contract the `tests/fleet_*.rs` suites pin.
//!
//! Run with: `cargo run --example datacenter_fleet`

use power_aware_scheduling::fleet::{
    replay, run, DispatchPolicy, EnginePower, EventTrace, FleetEvent, FleetEventKind,
    FleetScenario, HostConfig, HostPolicy,
};
use power_aware_scheduling::power::{DiscreteSpeeds, HostPower, PolyPower, SleepConfig};
use power_aware_scheduling::sim::faults::FaultModel;
use power_aware_scheduling::workload::generators;

fn main() {
    // A heavy-tailed request stream: 60 jobs, bounded-Pareto works.
    let workload = generators::heavy_tailed(60, 2.0, 0.2, 6.0, 1.5, 42);
    let cube = PolyPower::CUBE;

    // Four host archetypes, heterogeneous on purpose.
    let mut hosts = vec![
        // Host 0: bare continuous cubic, fixed speed.
        HostConfig::new(0, HostPower::dynamic_only(EnginePower::Poly(cube))),
        // Host 1: Athlon64-style ladder, qOA policy, small idle floor.
        {
            let ladder = DiscreteSpeeds::new(cube, vec![0.8, 1.8, 2.0]);
            let mut h = HostConfig::new(1, HostPower::with_idle(EnginePower::Ladder(ladder), 0.1));
            h.policy = HostPolicy::Qoa {
                allowance: 4.0,
                alpha: 3.0,
                q: 5.0,
            };
            h
        },
        // Host 2: idle floor with a sleep state, BKP policy.
        {
            let mut h = HostConfig::new(
                2,
                HostPower::with_idle(EnginePower::Poly(cube), 0.3).with_sleep(SleepConfig {
                    threshold: 2.0,
                    sleep_power: 0.05,
                    wake_energy: 1.0,
                }),
            );
            h.policy = HostPolicy::Bkp { factor: 1.3 };
            h
        },
        // Host 3: speed-capped, joins the fleet late.
        {
            let mut h = HostConfig::new(3, HostPower::dynamic_only(EnginePower::Poly(cube)));
            h.speed_cap = Some(1.2);
            h.available_from = 8.0;
            h
        },
    ];
    hosts[0].policy = HostPolicy::Fixed { speed: 1.4 };

    let mut scenario = FleetScenario::new(hosts, workload, 60.0, 7);
    scenario.dispatch = DispatchPolicy::LeastAssigned;
    // Scripted operations: host 1 crashes for 4 time units at t=10;
    // host 0 is decommissioned at t=20.
    scenario.events = vec![
        FleetEvent {
            at: 10.0,
            kind: FleetEventKind::HostFail {
                host: 1,
                duration: 4.0,
            },
        },
        FleetEvent {
            at: 20.0,
            kind: FleetEventKind::HostLeave { host: 0 },
        },
    ];
    // Plus a background fault stream, decorrelated per host by seed.
    scenario.fault_model = Some(FaultModel::uniform_mix(0.1));
    scenario.slo = Some(15.0);

    let out = run(&scenario).expect("fleet run succeeds");

    println!("== Fleet run: 60 heavy-tailed jobs on 4 heterogeneous hosts ==");
    println!("  host  jobs  dyn-energy  static  sleeps  flow      digest");
    for h in &out.hosts {
        println!(
            "  {:>4}  {:>4}  {:>10.3}  {:>6.3}  {:>6}  {:>8.3}  {:016x}",
            h.host,
            h.jobs_assigned,
            h.dynamic_energy,
            h.static_energy,
            h.sleep_transitions,
            h.total_flow,
            h.digest
        );
    }
    println!(
        "  totals: energy {:.3} (dynamic {:.3} + static {:.3}), flow {:.3}, makespan {:.3}",
        out.total_energy(),
        out.dynamic_energy,
        out.static_energy,
        out.total_flow,
        out.makespan
    );
    println!(
        "  completed {} jobs, shed {} ({} unroutable at the frontier), fleet digest {:016x}",
        out.completed_jobs,
        out.shed_jobs(),
        out.fleet_shed_jobs,
        out.digest
    );

    println!("\n== Record -> serialize -> parse -> replay ==");
    let text = out.trace.serialize();
    println!(
        "  trace: {} events, {} bytes of bit-exact hex-float text",
        out.trace.records.len(),
        text.len()
    );
    let parsed = EventTrace::parse(&text).expect("recorded trace parses");
    let replayed = replay(&scenario, &parsed).expect("replay succeeds");
    assert_eq!(
        out.digest, replayed.digest,
        "replay must reproduce the fleet digest bit-for-bit"
    );
    println!(
        "  replayed fleet digest {:016x} — identical",
        replayed.digest
    );

    // Seeds matter: a different seed shuffles same-time event ties and
    // (under dispatch) routing, giving a genuinely different run.
    let mut reseeded = scenario.clone();
    reseeded.seed = 8;
    let other = run(&reseeded).expect("reseeded run succeeds");
    println!(
        "  reseeded (7 -> 8) fleet digest {:016x} — {}",
        other.digest,
        if other.digest == out.digest {
            "identical (ties happened not to matter)"
        } else {
            "different, as expected"
        }
    );
}
