//! What the paper's model means on a real 2004 laptop.
//!
//! The paper's introduction quotes the AMD Athlon 64 power sheet: three
//! frequencies (2000/1800/800 MHz). This example takes the paper's
//! running instance, solves the continuous laptop problem, then applies
//! every §6 "real hardware" correction this library implements:
//!
//! 1. round the continuous optimum onto the Athlon's 3-level ladder
//!    (two-adjacent-level emulation) and measure the energy overhead;
//! 2. re-solve with hard speed bounds `[0.8, 2.0]` GHz;
//! 3. charge a per-switch stall and compare makespans;
//! 4. draw both schedules as ASCII Gantt charts.
//!
//! Run with: `cargo run --example athlon_laptop`

use power_aware_scheduling::discrete::emulate;
use power_aware_scheduling::makespan::{self, bounded};
use power_aware_scheduling::power::{discrete::ATHLON64_GHZ, BoundedPower, DiscreteSpeeds};
use power_aware_scheduling::prelude::*;
use power_aware_scheduling::sim::render_ascii;

fn main() -> Result<(), CoreError> {
    let instance =
        Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).expect("paper instance");
    let model = PolyPower::CUBE;
    // A budget whose continuous optimum uses speeds within [0.8, 2.0]:
    let budget = 14.0;

    println!("== 1. Continuous optimum (the paper's model) ==");
    let blocks = makespan::laptop(&instance, &model, budget)?;
    let continuous = blocks.to_schedule(&instance);
    println!(
        "  makespan {:.4}, energy {:.4}, speeds {:?}",
        blocks.makespan(),
        blocks.energy(&model),
        blocks
            .blocks()
            .iter()
            .map(|b| (b.speed * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );
    print!("{}", render_ascii(&continuous, 66));

    println!("\n== 2. Rounded to the Athlon 64 ladder {ATHLON64_GHZ:?} GHz ==");
    let ladder = DiscreteSpeeds::new(model, ATHLON64_GHZ.to_vec());
    let report = emulate(&continuous, &ladder)?;
    println!(
        "  energy {:.4} ({:+.2}% over continuous), {} speed switches, timing exact: {}",
        report.energy,
        (report.overhead - 1.0) * 100.0,
        report.switches,
        report.timing_exact
    );
    print!("{}", render_ascii(&report.schedule, 66));

    println!("\n== 3. Hard speed bounds [0.8, 2.0] GHz ==");
    let bounds = BoundedPower::new(model, 0.8, 2.0);
    let sol = bounded::laptop_bounded(&instance, &bounds, budget)?;
    println!(
        "  makespan {:.4}, energy {:.4}, clamped to min: {}",
        sol.makespan, sol.energy, sol.clamped_to_min
    );

    println!("\n== 4. Switching costs (the processor stalls per change) ==");
    for delta in [0.0, 0.05, 0.2] {
        let cont = power_aware_scheduling::sim::metrics::makespan_with_switch_overhead(
            &continuous,
            delta,
            1e-9,
        );
        let disc = power_aware_scheduling::sim::metrics::makespan_with_switch_overhead(
            &report.schedule,
            delta,
            1e-9,
        );
        println!("  stall {delta:4.2}: continuous makespan {cont:.4}, discretized {disc:.4}");
    }
    println!("\nThe discretized schedule pays twice: convexity overhead in energy");
    println!("and extra switches in time — §6's argument, quantified.");
    Ok(())
}
