//! Crash→restore round trip for the serving layer, driven from a real
//! file journal — the kill-and-restore determinism demo (and the CI
//! job behind it).
//!
//! ```text
//! # Uninterrupted run: writes fresh.journal, prints the outcome digest.
//! cargo run --example serve_restore -- --journal fresh.journal
//!
//! # Crash simulation: stop after 40 engine steps (or SIGKILL the
//! # process mid-run — add --stall-ms 5 to widen the window).
//! cargo run --example serve_restore -- --journal crash.journal --steps 40
//!
//! # Restore from whatever the dead process flushed and finish.
//! cargo run --example serve_restore -- --journal crash.journal --restore
//! ```
//!
//! The digest printed by the restored run is **bit-identical** to the
//! uninterrupted run's — same schedule slices, same energy, same
//! resilience counters — no matter where the crash landed, because the
//! journal (not the wall clock) is the source of truth. CI runs exactly
//! this sequence with a SIGKILL and diffs the two digests.

use power_aware_scheduling::online::FlowReplanner;
use power_aware_scheduling::power::PolyPower;
use power_aware_scheduling::sim::online::{Decision, OnlinePolicy, ReadyView};
use power_aware_scheduling::sim::{
    outcome_digest, FaultModel, FaultNotice, FaultPlan, Journal, ServeConfig, ServeOutcome, Server,
};
use power_aware_scheduling::workload::{generators, Instance};

/// The fixed demo scenario: a seeded Poisson workload with a seeded
/// crash/cancel/throttle/burst plan on top. Every invocation of this
/// example builds the identical scenario, so digests are comparable
/// across processes.
const SEED: u64 = 2006;
const N_JOBS: usize = 200;

fn scenario() -> (Instance, FaultPlan) {
    let instance = generators::poisson(N_JOBS, 0.8, (0.5, 1.5), SEED);
    let horizon = instance.last_release() + instance.total_work();
    let ids: Vec<u32> = instance.jobs().iter().map(|j| j.id).collect();
    let rate = 24.0 / horizon.max(1.0);
    let plan = FaultModel::uniform_mix(rate).sample(horizon, &ids, SEED);
    (instance, plan)
}

/// Wraps the real policy and sleeps before each consultation — widens
/// the window a SIGKILL can land in without changing any decision.
struct Stall<P> {
    inner: P,
    ms: u64,
}

impl<P: OnlinePolicy> OnlinePolicy for Stall<P> {
    fn decide(&mut self, now: f64, ready: &dyn ReadyView, energy_spent: f64) -> Option<Decision> {
        if self.ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.ms));
        }
        self.inner.decide(now, ready, energy_spent)
    }

    fn notify(&mut self, notice: &FaultNotice) {
        self.inner.notify(notice);
    }

    fn save_state(&self) -> Option<Vec<f64>> {
        self.inner.save_state()
    }

    fn load_state(&mut self, state: &[f64]) -> bool {
        self.inner.load_state(state)
    }

    fn name(&self) -> String {
        self.inner.name()
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|p| args.get(p + 1))
        .cloned()
}

fn report(label: &str, served: &ServeOutcome) {
    println!("{label}:");
    println!(
        "  outcome_digest   {:016x}",
        outcome_digest(&served.outcome)
    );
    println!("  energy           {}", served.outcome.energy);
    println!("  steps            {}", served.stats.steps);
    println!("  decisions        {}", served.stats.decisions);
    println!("  replayed         {}", served.stats.replayed_decisions);
    println!("  snapshots        {}", served.stats.snapshots);
    println!(
        "  crashes/downtime {}/{}",
        served.outcome.resilience.crashes, served.outcome.resilience.downtime
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let journal_path = flag_value(&args, "--journal").unwrap_or_else(|| "serve.journal".into());
    let restore = args.iter().any(|a| a == "--restore");
    let steps: Option<u64> = flag_value(&args, "--steps").map(|s| s.parse().expect("--steps N"));
    let stall_ms: u64 = flag_value(&args, "--stall-ms")
        .map(|s| s.parse().expect("--stall-ms MS"))
        .unwrap_or(0);

    let (instance, plan) = scenario();
    let model = PolyPower::CUBE;
    let budget = 2.0 * instance.total_work();
    let config = ServeConfig {
        snapshot_every: Some(32),
        ..ServeConfig::default()
    };
    let mut policy = Stall {
        inner: FlowReplanner::new(3.0, budget, 32),
        ms: stall_ms,
    };

    if restore {
        let prior = std::fs::read_to_string(&journal_path).expect("read prior journal");
        let sink = Journal::append(&journal_path).expect("append to journal");
        let server = Server::restore(&instance, &model, &plan, config, &prior, sink, &mut policy)
            .expect("restore from journal");
        println!(
            "restored from {journal_path} ({} decisions to replay)",
            server.pending_replay()
        );
        let served = server.run(&mut policy).expect("restored run succeeds");
        report("restored run", &served);
        return;
    }

    let sink = Journal::create(&journal_path).expect("create journal");
    let mut server =
        Server::new(&instance, &model, &plan, config, sink).expect("serve setup succeeds");
    match steps {
        Some(max) => {
            let done = server.run_for(&mut policy, max).expect("partial run");
            if done {
                let served = server.finish().expect("finish succeeds");
                report("finished before the cut", &served);
            } else {
                println!(
                    "stopped after {max} steps; journal left at {journal_path} \
                     (restart with --restore)"
                );
            }
        }
        None => {
            let served = server.run(&mut policy).expect("serve run succeeds");
            report("uninterrupted run", &served);
        }
    }
}
