//! Regenerate the data series behind the paper's Figures 1, 2 and 3.
//!
//! Prints CSV to stdout: for each energy budget in the figures' range
//! `[6, 21]`, the optimal makespan and its first and second derivatives,
//! computed from the closed-form frontier. Pipe to a file and plot to
//! recreate the figures:
//!
//! `cargo run --example paper_instance > figures.csv`

use power_aware_scheduling::prelude::*;

fn main() -> Result<(), CoreError> {
    let instance = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).expect("valid jobs");
    let model = PolyPower::CUBE;
    let frontier = Frontier::build(&instance, &model);

    eprintln!(
        "# Figure 1-3 series; configuration breakpoints at {:?}",
        frontier.breakpoints()
    );
    println!("energy,makespan,dM_dE,d2M_dE2");
    let (lo, hi, steps) = (6.0, 21.0, 300);
    for k in 0..=steps {
        let e = lo + (hi - lo) * k as f64 / steps as f64;
        println!(
            "{:.6},{:.9},{:.9},{:.9}",
            e,
            frontier.makespan(&model, e)?,
            frontier.makespan_derivative(&model, e)?,
            frontier.makespan_second_derivative(&model, e)?,
        );
    }
    Ok(())
}
