//! Quickstart: the paper's running example end to end.
//!
//! Reproduces the numbers behind Figures 1–3 of Bunde (SPAA 2006) on the
//! three-job instance `r = [0, 5, 6]`, `w = [5, 2, 1]` with
//! `power = speed³`, then shows the laptop/server duality.
//!
//! Run with: `cargo run --example quickstart`

use power_aware_scheduling::prelude::*;

fn main() -> Result<(), CoreError> {
    // The §3.2 instance: (release, work) pairs. Instances sort by
    // release automatically and ids map back to input order.
    let instance = Instance::from_pairs(&[(0.0, 5.0), (5.0, 2.0), (6.0, 1.0)]).expect("valid jobs");
    let model = PolyPower::CUBE;

    println!("== Laptop problem (fix energy, minimize makespan) ==");
    for budget in [6.0, 8.0, 12.0, 17.0, 21.0] {
        let solution = makespan::laptop(&instance, &model, budget)?;
        println!(
            "  E = {budget:5.1}  ->  makespan {:.4}  ({} block(s), speeds {:?})",
            solution.makespan(),
            solution.blocks().len(),
            solution
                .blocks()
                .iter()
                .map(|b| (b.speed * 1e4).round() / 1e4)
                .collect::<Vec<_>>()
        );
    }

    println!("\n== The full non-dominated frontier ==");
    let frontier = Frontier::build(&instance, &model);
    println!(
        "  configuration changes at E = {:?}  (paper: 17 and 8)",
        frontier
            .breakpoints()
            .iter()
            .map(|e| (e * 1e6).round() / 1e6)
            .collect::<Vec<_>>()
    );
    println!(
        "  M'(8)  = {:+.4}   (closed form -1/2)",
        frontier.makespan_derivative(&model, 8.0)?
    );
    println!(
        "  M'(17) = {:+.4}   (closed form -1/16)",
        frontier.makespan_derivative(&model, 17.0)?
    );

    println!("\n== Server problem (fix makespan, minimize energy) ==");
    for target in [6.5, 7.0, 8.0, 9.0] {
        let energy = frontier.energy_for_makespan(&model, target)?;
        println!("  finish by {target:4.1}  ->  minimum energy {energy:8.4}");
    }

    println!("\n== Schedules are first-class and validated ==");
    let blocks = makespan::laptop(&instance, &model, 21.0)?;
    let schedule = blocks.to_schedule(&instance);
    schedule
        .validate(&instance, 1e-7)
        .expect("optimal schedules always validate");
    let m = metrics::metrics(&schedule, &instance, &model);
    println!(
        "  E=21: makespan {:.4}, total flow {:.4}, energy {:.4}, {} speed switches",
        m.makespan, m.total_flow, m.energy, m.switches
    );
    Ok(())
}
