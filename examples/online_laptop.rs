//! Online power-aware scheduling: the paper's §6 open problem, measured.
//!
//! "If the algorithm cannot know when the last job has arrived, it must
//! balance the need to run quickly ... against the need to conserve
//! energy in case more jobs do arrive." No online algorithms with
//! guarantees are known; this example runs the natural policies from
//! `pas-core::online` against the offline frontier on Poisson and bursty
//! arrival streams and prints their empirical competitive ratios.
//!
//! Run with: `cargo run --example online_laptop`

use power_aware_scheduling::online::{
    compare_online, AdaptiveRate, ConstantSpeed, FractionalSpend, SpendAll,
};
use power_aware_scheduling::prelude::*;
use power_aware_scheduling::sim::online::OnlinePolicy;
use power_aware_scheduling::workload::generators;

fn main() -> Result<(), CoreError> {
    let model = PolyPower::CUBE;

    for (name, instance) in [
        ("poisson", generators::poisson(20, 0.6, (0.5, 1.5), 7)),
        ("bursty", generators::bursty(4, 5, 12.0, 0.5, (0.5, 1.5), 7)),
    ] {
        let budget = 1.5 * instance.total_work();
        println!(
            "== {name}: {} jobs, total work {:.2}, budget {budget:.2} ==",
            instance.len(),
            instance.total_work()
        );
        let offline = Frontier::build(&instance, &model).makespan(&model, budget)?;
        println!("  offline OPT makespan: {offline:.4}");

        let mut policies: Vec<Box<dyn OnlinePolicy>> = vec![
            Box::new(SpendAll::new(model, budget)),
            Box::new(FractionalSpend::new(model, budget, 0.3)),
            Box::new(FractionalSpend::new(model, budget, 0.6)),
            Box::new(AdaptiveRate::new(model, budget, 10.0)),
            Box::new(ConstantSpeed::for_budget(
                &model,
                instance.total_work(),
                budget,
            )?),
        ];
        for policy in policies.iter_mut() {
            let report = compare_online(&instance, &model, budget, policy.as_mut())?;
            println!(
                "  {:24} makespan {:10.4}  ratio {:8.4}  energy {:7.3} ({})",
                policy.name(),
                report.makespan,
                report.ratio,
                report.energy,
                if report.within_budget {
                    "within budget"
                } else {
                    "OVER budget"
                }
            );
        }
        println!();
    }
    println!("Note how spend-all collapses on bursty arrivals — exactly the");
    println!("tension §6 of the paper describes for the open online problem.");
    Ok(())
}
